#include "sched/session.h"

#include <algorithm>
#include <numeric>

#include "sched/thread_pool.h"
#include "support/stats.h"
#include "support/status.h"

namespace aqed::sched {

VerificationSession::VerificationSession(core::SessionOptions options)
    : options_(options) {}

size_t VerificationSession::Enqueue(core::AcceleratorBuilder build,
                                    core::AqedOptions options,
                                    std::string label) {
  const Status valid = options.Validate();
  AQED_CHECK(valid.ok(), "Enqueue with invalid options: " + valid.message());

  const size_t entry = num_entries_++;
  entry_sources_.emplace_back();

  const auto add = [&](core::AqedOptions group, uint32_t bound,
                       const char* property) {
    std::string job_label =
        label.empty() ? property : label + "/" + property;
    pending_.push_back({entry, std::move(job_label), build, std::move(group),
                        bound ? bound : options.bmc.max_bound,
                        options.bmc.conflict_budget, options_.deadline_ms});
  };
  // Cheapest property groups first: the RB and SAC monitors are small
  // counters/comparators whose refutations are easy, while FC carries the
  // symbolic orig/dup choice. A deadlocked design is reported in
  // milliseconds by the RB job instead of after deep FC refutations — and
  // under first-bug-wins it then cancels them outright.
  if (options.rb.has_value()) {
    core::AqedOptions rb_only = options;
    rb_only.check_fc = false;
    rb_only.sac_spec.reset();
    add(std::move(rb_only), options.rb_bound, "RB");
  }
  if (options.sac_spec.has_value()) {
    core::AqedOptions sac_only = options;
    sac_only.check_fc = false;
    sac_only.rb.reset();
    add(std::move(sac_only), options.sac_bound, "SAC");
  }
  if (options.check_fc) {
    core::AqedOptions fc_only = options;
    fc_only.rb.reset();
    fc_only.sac_spec.reset();
    add(std::move(fc_only), options.fc_bound, "FC");
  }
  return entry;
}

CancellationToken VerificationSession::TokenFor(size_t entry) const {
  switch (options_.cancel) {
    case core::SessionOptions::CancelPolicy::kEntry:
      return CancellationToken::Any(session_source_.token(),
                                    entry_sources_[entry].token());
    case core::SessionOptions::CancelPolicy::kSession:
    case core::SessionOptions::CancelPolicy::kNone:
      // kNone still honors an explicit VerificationSession::Cancel().
      return session_source_.token();
  }
  return session_source_.token();
}

void VerificationSession::RunJob(const PendingJob& job, core::JobResult& out) {
  out.entry = job.entry;
  out.label = job.label;
  out.attempt = job.attempt;
  CancellationToken token = TokenFor(job.entry);
  if (token.cancelled()) {
    // First-bug-wins (or an external cancel) landed before this job
    // started: report it untouched.
    out.cancelled = true;
    out.result.bmc.outcome = bmc::BmcResult::Outcome::kUnknown;
    out.result.bmc.cancelled = true;
    out.result.bmc.unknown_reason = UnknownReasonFromCancel(token.reason());
    out.unknown_reason = out.result.bmc.unknown_reason;
    return;
  }
  // Arm the wall-clock watchdog for this attempt; the guard disarms it the
  // moment the job returns, so a finished job can never be tripped late.
  CancellationSource deadline_source;
  Watchdog::Guard deadline_guard;
  if (job.deadline_ms > 0) {
    deadline_guard = watchdog_.Arm(deadline_source, job.deadline_ms);
    token = CancellationToken::Any(token, deadline_source.token());
  }
  Stopwatch watch;
  auto ts = std::make_unique<ir::TransitionSystem>();
  const core::AcceleratorInterface acc = job.build(*ts);
  core::AqedOptions options = job.options;
  options.bmc.max_bound = job.bound;
  options.bmc.conflict_budget = job.conflict_budget;
  options.bmc.cancel = token;
  out.result = core::RunAqed(*ts, acc, options);
  deadline_guard.Disarm();
  out.wall_seconds = watch.ElapsedSeconds();
  out.unknown_reason =
      out.result.bmc.outcome == bmc::BmcResult::Outcome::kUnknown
          ? out.result.bmc.unknown_reason
          : UnknownReason::kNone;
  // A deadline expiry is a per-job timeout, not a sibling stopping us —
  // only the latter counts as "cancelled" for first-bug-wins accounting.
  out.cancelled = out.result.bmc.cancelled &&
                  out.unknown_reason != UnknownReason::kDeadline;
  out.ts = std::move(ts);

  if (out.result.bug_found) {
    switch (options_.cancel) {
      case core::SessionOptions::CancelPolicy::kEntry:
        entry_sources_[job.entry].Cancel(CancelReason::kFirstBugWins);
        break;
      case core::SessionOptions::CancelPolicy::kSession:
        session_source_.Cancel(CancelReason::kFirstBugWins);
        break;
      case core::SessionOptions::CancelPolicy::kNone:
        break;
    }
  }
}

void VerificationSession::RunBatch(const std::vector<PendingJob>& jobs,
                                   const std::vector<size_t>& batch,
                                   std::vector<core::JobResult>& results,
                                   SessionStats& stats) {
  const uint32_t workers =
      options_.jobs == 0 ? ThreadPool::HardwareJobs() : options_.jobs;
  if (workers <= 1 || batch.size() <= 1) {
    // Inline sequential execution: deterministic, pool-free, and exactly
    // the legacy CheckAccelerator order.
    for (size_t i : batch) RunJob(jobs[i], results[i]);
  } else {
    ThreadPool pool(std::min<uint32_t>(workers,
                                       static_cast<uint32_t>(batch.size())));
    for (size_t i : batch) {
      pool.Submit([this, &jobs, &results, i] { RunJob(jobs[i], results[i]); });
    }
    pool.Wait();
  }
  for (size_t i : batch) {
    const core::JobResult& job = results[i];
    stats.AddJob({job.label, job.wall_seconds, job.result.bmc.seconds,
                  job.result.bmc.conflicts, job.result.bmc.frames_explored,
                  job.cancelled, job.result.bug_found, job.attempt,
                  job.unknown_reason});
  }
}

bool VerificationSession::EscalateForRetry(const core::JobResult& result,
                                           PendingJob& job) const {
  if (result.result.bmc.outcome != bmc::BmcResult::Outcome::kUnknown) {
    return false;
  }
  // Cancelled jobs are decided elsewhere (first-bug-wins) or abandoned
  // (external cancel) — re-running them would just be cancelled again.
  if (result.unknown_reason != UnknownReason::kConflictBudget &&
      result.unknown_reason != UnknownReason::kDeadline) {
    return false;
  }
  if (TokenFor(job.entry).cancelled()) return false;
  bool escalated = false;
  if (job.conflict_budget > 0) {
    int64_t next = job.conflict_budget * 2;
    const int64_t cap = options_.retry.max_conflict_budget;
    if (cap > 0) next = std::min(next, cap);
    if (next > job.conflict_budget) {
      job.conflict_budget = next;
      escalated = true;
    }
  }
  if (job.deadline_ms > 0) {
    uint64_t next = static_cast<uint64_t>(job.deadline_ms) * 2;
    const uint32_t cap = options_.retry.max_deadline_ms;
    if (cap > 0) next = std::min<uint64_t>(next, cap);
    next = std::min<uint64_t>(next, UINT32_MAX);
    if (next > job.deadline_ms) {
      job.deadline_ms = static_cast<uint32_t>(next);
      escalated = true;
    }
  }
  // A retry with identical budgets would deterministically fail the same
  // way; only re-run when something actually grew.
  return escalated;
}

core::SessionResult VerificationSession::Wait() {
  Stopwatch watch;
  core::SessionResult result;
  std::vector<PendingJob> jobs = std::move(pending_);
  pending_.clear();
  result.jobs.resize(jobs.size());

  std::vector<size_t> batch(jobs.size());
  std::iota(batch.begin(), batch.end(), 0);
  for (uint32_t attempt = 0;; ++attempt) {
    for (size_t i : batch) jobs[i].attempt = attempt;
    RunBatch(jobs, batch, result.jobs, result.stats);
    if (attempt >= options_.retry.max_retries) break;
    std::vector<size_t> retry;
    for (size_t i : batch) {
      if (EscalateForRetry(result.jobs[i], jobs[i])) retry.push_back(i);
    }
    if (retry.empty()) break;
    // Re-run escalated jobs into their original result slots: the final
    // JobResult (and the entry verdict) reflects the last attempt, while
    // the stats table keeps one row per executed attempt.
    for (size_t i : retry) result.jobs[i] = core::JobResult{};
    batch = std::move(retry);
  }

  result.num_entries = num_entries_;
  result.wall_seconds = watch.ElapsedSeconds();
  result.stats.set_wall_seconds(result.wall_seconds);
  return result;
}

}  // namespace aqed::sched
