#include "sched/memory_governor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/resource.h"

namespace aqed::sched {

namespace internal {
std::atomic<uint8_t> g_pressure{0};
}  // namespace internal

namespace {

// The calling thread's publish slot: set for the lifetime of the JobScope
// registered on this thread, null otherwise. The slot itself is shared with
// the governor's registry (shared_ptr), so a publish racing job teardown
// writes into a still-live atomic.
thread_local std::atomic<uint64_t>* t_solver_bytes = nullptr;

}  // namespace

void PublishSolverMemory(uint64_t bytes) {
  if (t_solver_bytes != nullptr) {
    t_solver_bytes->store(bytes, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// JobScope
// ---------------------------------------------------------------------------

MemoryGovernor::JobScope::JobScope(MemoryGovernor* governor, uint64_t id,
                                   CancellationSource source)
    : governor_(governor), id_(id), source_(std::move(source)) {}

MemoryGovernor::JobScope& MemoryGovernor::JobScope::operator=(
    JobScope&& other) noexcept {
  if (this != &other) {
    Release();
    governor_ = std::exchange(other.governor_, nullptr);
    id_ = std::exchange(other.id_, 0);
    source_ = std::move(other.source_);
  }
  return *this;
}

void MemoryGovernor::JobScope::Release() {
  if (governor_ == nullptr) return;
  t_solver_bytes = nullptr;
  governor_->Unregister(id_);
  governor_ = nullptr;
}

// ---------------------------------------------------------------------------
// MemoryGovernor
// ---------------------------------------------------------------------------

MemoryGovernor::~MemoryGovernor() { Stop(); }

void MemoryGovernor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void MemoryGovernor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  internal::g_pressure.store(0, std::memory_order_relaxed);
  telemetry::SetGauge("governor.pressure", 0);
}

MemoryGovernor::JobScope MemoryGovernor::Register(std::string label) {
  CancellationSource source;
  auto bytes = std::make_shared<std::atomic<uint64_t>>(0);
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    jobs_.push_back({id, std::move(label), source, bytes});
  }
  // Bind this thread's publish slot to the new job. RunJob registers on
  // the worker thread that executes the job, so solver publishes from that
  // thread land here; nested cube workers run on other threads and stay
  // unbound (the process-wide RSS probe still sees their allocations).
  t_solver_bytes = bytes.get();
  return JobScope(this, id, std::move(source));
}

void MemoryGovernor::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      std::find_if(jobs_.begin(), jobs_.end(),
                   [id](const Job& job) { return job.id == id; });
  if (it != jobs_.end()) {
    *it = std::move(jobs_.back());
    jobs_.pop_back();
  }
}

MemoryGovernor::Stats MemoryGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MemoryGovernor::CancelHeaviestLocked() {
  Job* heaviest = nullptr;
  uint64_t heaviest_bytes = 0;
  for (Job& job : jobs_) {
    if (job.source.cancelled()) continue;
    const uint64_t bytes = job.bytes->load(std::memory_order_relaxed);
    // >= so that jobs publishing nothing (footprint 0) are still
    // cancellable — the budget must win even over silent jobs.
    if (heaviest == nullptr || bytes >= heaviest_bytes) {
      heaviest = &job;
      heaviest_bytes = bytes;
    }
  }
  if (heaviest == nullptr) return;
  heaviest->source.Cancel(CancelReason::kMemoryBudget);
  ++stats_.jobs_cancelled;
  telemetry::AddCounter("governor.jobs_cancelled", 1);
  std::fprintf(stderr,
               "[governor] over memory budget (%u MiB): cancelling job "
               "'%s' (%llu KiB solver footprint published)\n",
               options_.budget_mb, heaviest->label.c_str(),
               static_cast<unsigned long long>(heaviest_bytes / 1024));
}

void MemoryGovernor::Loop() {
  const uint64_t budget_kb = static_cast<uint64_t>(options_.budget_mb) * 1024;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    const telemetry::ResourceUsage usage = telemetry::SampleResourceUsage();
    lock.lock();
    ++stats_.polls;
    stats_.peak_rss_kb = std::max(stats_.peak_rss_kb, usage.rss_kb);
    uint8_t pressure = 0;
    if (budget_kb > 0 && usage.rss_kb > 0) {
      const uint64_t rss_kb = static_cast<uint64_t>(usage.rss_kb);
      if (rss_kb >= budget_kb) {
        pressure = static_cast<uint8_t>(MemoryPressure::kCancel);
      } else if (rss_kb * 100 >= budget_kb * options_.throttle_percent) {
        pressure = static_cast<uint8_t>(MemoryPressure::kThrottle);
      } else if (rss_kb * 100 >= budget_kb * options_.shed_percent) {
        pressure = static_cast<uint8_t>(MemoryPressure::kShed);
      }
    }
    internal::g_pressure.store(pressure, std::memory_order_relaxed);
    telemetry::SetGauge("governor.pressure", pressure);
    if (pressure == static_cast<uint8_t>(MemoryPressure::kCancel)) {
      // One job per tick: give the freed memory a poll period to show up
      // in RSS before deciding the next-heaviest job must die too.
      CancelHeaviestLocked();
    }
  }
}

}  // namespace aqed::sched
