#include "sched/thread_pool.h"

#include "support/failpoint.h"
#include "telemetry/metrics.h"

namespace aqed::sched {

uint32_t ThreadPool::HardwareJobs() {
  const uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = HardwareJobs();
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  // Queue depth for the flight recorder: sampled mid-session it shows how
  // far job submission runs ahead of the workers (the backlog the
  // queue-wait histogram prices in time). Updated outside the pool lock.
  telemetry::SetGauge("sched.queue_depth", static_cast<int64_t>(depth));
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      depth = queue_.size();
    }
    telemetry::SetGauge("sched.queue_depth", static_cast<int64_t>(depth));
    // Live pool occupancy: how many workers are on a task right now. A
    // metrics snapshot taken mid-session shows saturation; end-of-run
    // snapshots read 0.
    telemetry::AddGauge("sched.pool.active", 1);
    telemetry::AddCounter("sched.pool.tasks", 1);
    // Chaos site: a delay trigger stretches the dispatch-to-start gap (the
    // queue-wait the telemetry layer prices). Tasks must not throw, so this
    // site supports delay only — a throw here would terminate the process.
    (void)AQED_FAILPOINT("sched.pool.dispatch");
    task();
    telemetry::AddGauge("sched.pool.active", -1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace aqed::sched
