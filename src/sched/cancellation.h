// Cooperative cancellation for verification jobs.
//
// A CancellationSource owns a shared flag; CancellationTokens observe it.
// Tokens are cheap to copy, safe to poll from any thread, and are threaded
// through the long-running loops of the stack (the BMC depth loop and the
// SAT solver's search loop) so that a session can stop sibling jobs the
// moment one of them finds a bug ("first-bug-wins").
//
// Cancellation is strictly cooperative and monotonic: once a source is
// cancelled it stays cancelled, and a job observes it at its next poll
// point. The flag is a relaxed atomic — polling costs one uncontended load,
// cheap enough to sit inside the solver's per-decision loop.
//
// This header is dependency-free on purpose: the SAT and BMC layers include
// it without pulling in any scheduler machinery.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace aqed::sched {

// Observer half. A default-constructed token is never cancelled (the common
// case for standalone RunBmc / Solver use outside a session). A token may
// observe up to two flags (see CancellationToken::Any) so a job can honor
// both its entry-local source and a session-wide source.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    return (a_ && a_->load(std::memory_order_relaxed)) ||
           (b_ && b_->load(std::memory_order_relaxed));
  }

  // True when the token actually observes some source.
  bool armed() const { return a_ != nullptr || b_ != nullptr; }

  // A token cancelled when either input token is. Tokens observing more
  // than two flags are not supported (and never needed here): combining
  // two already-combined tokens keeps only one flag of the second operand.
  static CancellationToken Any(const CancellationToken& x,
                               const CancellationToken& y) {
    CancellationToken token;
    token.a_ = x.a_ ? x.a_ : x.b_;
    token.b_ = y.a_ ? y.a_ : y.b_;
    if (token.a_ == nullptr) {
      token.a_ = token.b_;
      token.b_ = nullptr;
    }
    return token;
  }

 private:
  friend class CancellationSource;
  using Flag = std::shared_ptr<const std::atomic<bool>>;

  explicit CancellationToken(Flag flag) : a_(std::move(flag)) {}

  Flag a_;
  Flag b_;
};

// Owner half: hands out tokens and flips them all with Cancel().
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace aqed::sched
