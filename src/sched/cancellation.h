// Cooperative cancellation for verification jobs.
//
// A CancellationSource owns a shared flag; CancellationTokens observe it.
// Tokens are cheap to copy, safe to poll from any thread, and are threaded
// through the long-running loops of the stack (the BMC depth loop and the
// SAT solver's search loop) so that a session can stop sibling jobs the
// moment one of them finds a bug ("first-bug-wins"), and so that a deadline
// watchdog can stop a job whose wall-clock budget ran out.
//
// Cancellation is strictly cooperative and monotonic: once a source is
// cancelled it stays cancelled, and a job observes it at its next poll
// point. Each source records *why* it fired (CancelReason) — the first
// Cancel() wins — so an observer can distinguish a deadline expiry from
// first-bug-wins when deciding whether the job is worth retrying. The flag
// is a relaxed atomic — polling costs a few uncontended loads, cheap enough
// to sit inside the solver's per-decision loop.
//
// This header is deliberately free of scheduler machinery: the SAT and BMC
// layers include it without pulling in threads or sessions.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "support/verdict.h"

namespace aqed::sched {

// Why a cancellation source fired (support/verdict.h — the enum lives with
// the other outcome enums so the wire-stable string mapping is defined
// once). Stored inside the shared flag itself (0 = not cancelled), so
// reading the reason is the same relaxed load as polling.
using aqed::CancelReason;

// The UnknownReason a cancellation maps to when it stops a solve/job.
inline UnknownReason UnknownReasonFromCancel(CancelReason reason) {
  switch (reason) {
    case CancelReason::kDeadline:
      return UnknownReason::kDeadline;
    case CancelReason::kMemoryBudget:
      return UnknownReason::kMemoryBudget;
    default:
      return UnknownReason::kCancelled;
  }
}

// Observer half. A default-constructed token is never cancelled (the common
// case for standalone RunBmc / Solver use outside a session). A token may
// observe up to kMaxFlags flags (see CancellationToken::Any) so a job can
// honor its entry-local source, a session-wide source, its deadline
// watchdog, and the memory governor at once.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    for (const Flag& flag : flags_) {
      if (flag && flag->load(std::memory_order_relaxed) != 0) return true;
    }
    return false;
  }

  // Why the token is cancelled: the reason of the first fired flag, kNone
  // when the token is not cancelled.
  CancelReason reason() const {
    for (const Flag& flag : flags_) {
      if (!flag) continue;
      const uint8_t raw = flag->load(std::memory_order_relaxed);
      if (raw != 0) return static_cast<CancelReason>(raw);
    }
    return CancelReason::kNone;
  }

  // True when the token actually observes some source.
  bool armed() const { return flags_[0] != nullptr; }

  // Two tokens are equal when they observe the same flags in the same
  // order — i.e. they were built from the same sources the same way. This
  // is identity of observation, not of current state; it is what the BMC
  // layer's conflicting-token debug check compares.
  bool operator==(const CancellationToken& other) const = default;

  // A token cancelled when either input token is. The combined token keeps
  // up to kMaxFlags distinct flags (the deepest stack is the cube layer:
  // session + entry + per-job deadline + per-job memory governor +
  // first-SAT-wins cube winner); further flags of the second operand are
  // dropped.
  static CancellationToken Any(const CancellationToken& x,
                               const CancellationToken& y) {
    CancellationToken token;
    size_t n = 0;
    for (const Flag& flag : x.flags_) {
      if (flag && n < kMaxFlags) token.flags_[n++] = flag;
    }
    for (const Flag& flag : y.flags_) {
      if (flag && n < kMaxFlags) token.flags_[n++] = flag;
    }
    return token;
  }

 private:
  friend class CancellationSource;
  using Flag = std::shared_ptr<const std::atomic<uint8_t>>;
  static constexpr size_t kMaxFlags = 5;

  explicit CancellationToken(Flag flag) { flags_[0] = std::move(flag); }

  std::array<Flag, kMaxFlags> flags_{};
};

// Owner half: hands out tokens and flips them all with Cancel().
class CancellationSource {
 public:
  CancellationSource()
      : flag_(std::make_shared<std::atomic<uint8_t>>(0)) {}

  // Cancels every token of this source. The first caller's reason sticks
  // (monotonic: later calls never overwrite it).
  void Cancel(CancelReason reason = CancelReason::kExternal) {
    uint8_t expected = 0;
    flag_->compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_->load(std::memory_order_relaxed) != 0;
  }
  CancelReason reason() const {
    return static_cast<CancelReason>(flag_->load(std::memory_order_relaxed));
  }

  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<uint8_t>> flag_;
};

}  // namespace aqed::sched
