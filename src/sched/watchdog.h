// Wall-clock deadline watchdog for verification jobs.
//
// A single background thread holds the armed deadlines of a session's
// running jobs and trips each job's CancellationSource (with
// CancelReason::kDeadline) when its wall-clock budget expires. The running
// job observes the trip at its next cooperative poll point — the BMC depth
// boundary or the SAT solver's search/restart loop — and returns kUnknown
// with the deadline reason, so one hard SAT instance can no longer stall a
// whole session.
//
// The watchdog thread is started lazily on the first Arm() call: sessions
// without deadlines stay thread-free. Arm() returns an RAII guard; the
// guard's destruction disarms the deadline, so a job that finishes early
// never gets a late spurious trip.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/cancellation.h"

namespace aqed::sched {

class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog();  // stops and joins the thread (all guards must be dead)

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Disarms its deadline on destruction. Movable, not copyable.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept { *this = std::move(other); }
    Guard& operator=(Guard&& other) noexcept;
    ~Guard() { Disarm(); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    // Removes the deadline; a no-op if it already fired (the source stays
    // cancelled — cancellation is monotonic).
    void Disarm();

   private:
    friend class Watchdog;
    Guard(Watchdog* dog, uint64_t id) : dog_(dog), id_(id) {}
    Watchdog* dog_ = nullptr;
    uint64_t id_ = 0;
  };

  // Schedules `source` to be cancelled (reason kDeadline) `timeout_ms`
  // milliseconds from now unless the returned guard is destroyed first.
  Guard Arm(CancellationSource source, uint32_t timeout_ms);

 private:
  struct Entry {
    uint64_t id;
    std::chrono::steady_clock::time_point deadline;
    CancellationSource source;
  };

  void Loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  uint64_t next_id_ = 1;
  bool stop_ = false;
  std::thread thread_;  // joinable once the first deadline is armed
};

}  // namespace aqed::sched
