#include "sched/watchdog.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace aqed::sched {

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Watchdog::Guard& Watchdog::Guard::operator=(Guard&& other) noexcept {
  if (this != &other) {
    Disarm();
    dog_ = other.dog_;
    id_ = other.id_;
    other.dog_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void Watchdog::Guard::Disarm() {
  if (dog_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(dog_->mu_);
    auto& entries = dog_->entries_;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const Entry& e) { return e.id == id_; }),
                  entries.end());
  }
  // No notify needed: the thread re-checks the entry list on every wakeup,
  // and waking it early for a removal would only cost a spurious scan.
  dog_ = nullptr;
  id_ = 0;
}

Watchdog::Guard Watchdog::Arm(CancellationSource source, uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    entries_.push_back({id, deadline, std::move(source)});
    if (!thread_.joinable()) thread_ = std::thread([this] { Loop(); });
  }
  cv_.notify_all();
  return Guard(this, id);
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (entries_.empty()) {
      cv_.wait(lock);
      continue;
    }
    auto next = std::min_element(entries_.begin(), entries_.end(),
                                 [](const Entry& a, const Entry& b) {
                                   return a.deadline < b.deadline;
                                 })
                    ->deadline;
    if (cv_.wait_until(lock, next) == std::cv_status::timeout) {
      const auto now = std::chrono::steady_clock::now();
      for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->deadline <= now) {
          it->source.Cancel(CancelReason::kDeadline);
          telemetry::AddCounter("sched.watchdog.trips", 1);
          it = entries_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

}  // namespace aqed::sched
