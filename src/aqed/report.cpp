#include "aqed/report.h"

#include <cstdio>

namespace aqed::core {

std::string SummarizeResult(const AqedResult& result) {
  char buf[256];
  if (result.bug_found) {
    std::snprintf(buf, sizeof(buf),
                  "BUG (%s): %u-cycle counterexample, %.3f s, %llu conflicts",
                  BugKindName(result.kind), result.cex_cycles(),
                  result.bmc.seconds,
                  static_cast<unsigned long long>(result.bmc.conflicts));
  } else if (result.bmc.outcome == bmc::BmcResult::Outcome::kBoundReached) {
    std::snprintf(buf, sizeof(buf),
                  "PASS up to bound %u (%.3f s, %llu conflicts)",
                  result.bmc.frames_explored, result.bmc.seconds,
                  static_cast<unsigned long long>(result.bmc.conflicts));
  } else {
    std::snprintf(buf, sizeof(buf), "UNKNOWN (budget exhausted at frame %u)",
                  result.bmc.frames_explored);
  }
  return buf;
}

std::string FormatResult(const ir::TransitionSystem& ts,
                         const AqedResult& result) {
  std::string out = SummarizeResult(result);
  out += '\n';
  if (result.bug_found) {
    out += bmc::FormatTrace(ts, result.bmc.trace);
    out += result.bmc.trace_validated
               ? "(counterexample validated by simulator replay)\n"
               : "(counterexample NOT validated)\n";
  }
  return out;
}

}  // namespace aqed::core
