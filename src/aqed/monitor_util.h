// Small shared helpers for building A-QED monitor logic inside a design's
// transition system (registers with latch-enables, batch-element muxing,
// saturating counters).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/transition_system.h"

namespace aqed::core {

// Creates a register with an initial value; next function must be set later
// (LatchWhen / SetNext).
inline ir::NodeRef Reg(ir::TransitionSystem& ts, const std::string& name,
                       uint32_t width, uint64_t init) {
  return ts.AddState(name, ir::Sort::BitVec(width), init);
}

// reg' = enable ? value : reg
inline void LatchWhen(ir::TransitionSystem& ts, ir::NodeRef reg,
                      ir::NodeRef enable, ir::NodeRef value) {
  ts.SetNext(reg, ts.ctx().Ite(enable, value, reg));
}

// Sticky flag: reg' = reg | set.
inline void SetSticky(ir::TransitionSystem& ts, ir::NodeRef reg,
                      ir::NodeRef set) {
  ts.SetNext(reg, ts.ctx().Or(reg, set));
}

// counter' = increment ? counter + 1 : counter.
inline void CountWhen(ir::TransitionSystem& ts, ir::NodeRef counter,
                      ir::NodeRef increment) {
  ir::Context& ctx = ts.ctx();
  const ir::NodeRef one = ctx.Const(ctx.width(counter), 1);
  ts.SetNext(counter, ctx.Ite(increment, ctx.Add(counter, one), counter));
}

// Selects element `index` from a per-element signal table:
// result[w] = elems[index][w]. `index` values >= elems.size() select
// element 0 (callers constrain the index range).
inline std::vector<ir::NodeRef> MuxByIndex(
    ir::Context& ctx, ir::NodeRef index,
    const std::vector<std::vector<ir::NodeRef>>& elems) {
  std::vector<ir::NodeRef> result = elems[0];
  for (uint64_t e = 1; e < elems.size(); ++e) {
    const ir::NodeRef hit =
        ctx.Eq(index, ctx.Const(ctx.width(index), e));
    for (size_t w = 0; w < result.size(); ++w) {
      result[w] = ctx.Ite(hit, elems[e][w], result[w]);
    }
  }
  return result;
}

// 1-bit conjunction of element-wise equality over two word vectors.
inline ir::NodeRef AllEqual(ir::Context& ctx,
                            const std::vector<ir::NodeRef>& a,
                            const std::vector<ir::NodeRef>& b) {
  ir::NodeRef acc = ctx.True();
  for (size_t i = 0; i < a.size(); ++i) {
    acc = ctx.And(acc, ctx.Eq(a[i], b[i]));
  }
  return acc;
}

// Width needed to index `count` elements (at least 1).
inline uint32_t IndexWidth(uint32_t count) {
  uint32_t width = 1;
  while ((uint64_t{1} << width) < count) ++width;
  return width;
}

}  // namespace aqed::core
