// Human-readable reporting of A-QED check outcomes.
#pragma once

#include <string>

#include "aqed/checker.h"

namespace aqed::core {

// One-line verdict: property status, CEX length, runtime, solver effort.
std::string SummarizeResult(const AqedResult& result);

// Full report including the formatted counterexample trace (if any).
std::string FormatResult(const ir::TransitionSystem& ts,
                         const AqedResult& result);

}  // namespace aqed::core
