#include "aqed/interface.h"

namespace aqed::core {

Status AcceleratorInterface::Validate(const ir::TransitionSystem& ts) const {
  const ir::Context& ctx = ts.ctx();
  auto check_bit = [&](ir::NodeRef node, const char* what) -> Status {
    if (node == ir::kNullNode) {
      return Status::Error(std::string(what) + " signal is missing");
    }
    if (!ctx.sort(node).is_bitvec() || ctx.width(node) != 1) {
      return Status::Error(std::string(what) + " signal is not 1 bit");
    }
    return Status::Ok();
  };
  for (auto [node, what] :
       {std::pair{in_valid, "in_valid"}, std::pair{in_ready, "in_ready"},
        std::pair{host_ready, "host_ready"},
        std::pair{out_valid, "out_valid"}}) {
    if (Status status = check_bit(node, what); !status.ok()) return status;
  }
  if (data_elems.empty()) return Status::Error("no data elements");
  if (out_elems.size() != data_elems.size()) {
    return Status::Error("output batch size differs from input batch size");
  }
  // Word sorts may differ by position (e.g. an action word next to data
  // words) but must agree across batch elements position-by-position.
  auto check_elems = [&](const std::vector<std::vector<ir::NodeRef>>& elems,
                         const char* what) -> Status {
    for (const auto& elem : elems) {
      if (elem.empty()) {
        return Status::Error(std::string("empty ") + what + " element");
      }
      if (elem.size() != elems[0].size()) {
        return Status::Error(std::string("ragged ") + what + " elements");
      }
      for (size_t w = 0; w < elem.size(); ++w) {
        if (!ctx.sort(elem[w]).is_bitvec()) {
          return Status::Error(std::string(what) +
                               " word is not a bitvector");
        }
        if (ctx.sort(elem[w]) != ctx.sort(elems[0][w])) {
          return Status::Error(std::string(what) +
                               " word sorts differ across batch elements");
        }
      }
    }
    return Status::Ok();
  };
  if (Status status = check_elems(data_elems, "data"); !status.ok()) {
    return status;
  }
  if (Status status = check_elems(out_elems, "output"); !status.ok()) {
    return status;
  }
  for (ir::NodeRef node : shared_context) {
    if (!ctx.sort(node).is_bitvec()) {
      return Status::Error("shared-context signal is not a bitvector");
    }
  }
  return Status::Ok();
}

}  // namespace aqed::core
