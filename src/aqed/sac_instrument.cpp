#include "aqed/sac_instrument.h"

#include "aqed/monitor_util.h"
#include "support/status.h"

namespace aqed::core {

using ir::Context;
using ir::NodeRef;

SacInstrumentation InstrumentSac(ir::TransitionSystem& ts,
                                 const AcceleratorInterface& acc,
                                 const SpecFn& spec,
                                 const SacOptions& options) {
  const Status valid = acc.Validate(ts);
  AQED_CHECK(valid.ok(), "InstrumentSac: " + valid.message());
  Context& ctx = ts.ctx();
  SacInstrumentation sac;

  const NodeRef capture_in = ctx.And(acc.in_valid, acc.in_ready);
  const NodeRef capture_out = ctx.And(acc.out_valid, acc.host_ready);

  // Def. 7 environment: the host presents exactly one valid transaction,
  // holding in_valid until it is captured, then sends nop forever while
  // staying ready to accept the output.
  const NodeRef got_input = Reg(ts, options.label + ".got_input", 1, 0);
  SetSticky(ts, got_input, capture_in);
  ts.AddConstraint(ctx.Eq(acc.in_valid, ctx.Not(got_input)));
  ts.AddConstraint(acc.host_ready);

  // Latch the captured transaction (per element) and shared context.
  const size_t in_size = acc.data_elems[0].size();
  std::vector<std::vector<NodeRef>> latched(acc.batch_size());
  for (uint32_t e = 0; e < acc.batch_size(); ++e) {
    latched[e].resize(in_size);
    for (size_t w = 0; w < in_size; ++w) {
      latched[e][w] = Reg(ts,
                          options.label + ".in" + std::to_string(e) + "_" +
                              std::to_string(w),
                          ctx.width(acc.data_elems[e][w]), 0);
      LatchWhen(ts, latched[e][w], capture_in, acc.data_elems[e][w]);
    }
  }
  std::vector<NodeRef> latched_context(acc.shared_context.size());
  for (size_t c = 0; c < acc.shared_context.size(); ++c) {
    latched_context[c] = Reg(ts, options.label + ".ctx" + std::to_string(c),
                             ctx.width(acc.shared_context[c]), 0);
    LatchWhen(ts, latched_context[c], capture_in, acc.shared_context[c]);
  }

  // First captured output batch must equal Spec element-wise.
  const NodeRef seen_out = Reg(ts, options.label + ".seen_out", 1, 0);
  SetSticky(ts, seen_out, capture_out);
  sac.first_out_event = ctx.And(capture_out, ctx.Not(seen_out));

  NodeRef all_match = ctx.True();
  for (uint32_t e = 0; e < acc.batch_size(); ++e) {
    std::vector<NodeRef> spec_inputs = latched[e];
    spec_inputs.insert(spec_inputs.end(), latched_context.begin(),
                       latched_context.end());
    const std::vector<NodeRef> expected = spec(ctx, spec_inputs);
    AQED_CHECK(expected.size() == acc.out_elems[e].size(),
               "SAC spec output arity mismatch");
    for (size_t w = 0; w < expected.size(); ++w) {
      all_match = ctx.And(all_match,
                          ctx.Eq(acc.out_elems[e][w], expected[w]));
    }
  }
  // The transaction counts as captured either in an earlier cycle
  // (got_input) or in this very cycle (combinational completion).
  const NodeRef violation =
      ctx.And(ctx.And(sac.first_out_event, ctx.Or(got_input, capture_in)),
              ctx.Not(all_match));
  sac.sac_bad_index = ts.AddBad(violation, options.label);
  sac.got_input = got_input;
  return sac;
}

}  // namespace aqed::core
