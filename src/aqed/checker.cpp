#include "aqed/checker.h"

#include "support/status.h"

namespace aqed::core {

const char* BugKindName(BugKind kind) {
  switch (kind) {
    case BugKind::kNone:
      return "none";
    case BugKind::kFunctionalConsistency:
      return "FC";
    case BugKind::kEarlyOutput:
      return "FC(early-output)";
    case BugKind::kResponseBound:
      return "RB";
    case BugKind::kInputStarvation:
      return "RB(starvation)";
    case BugKind::kSingleActionCorrectness:
      return "SAC";
  }
  return "?";
}

AqedResult RunAqed(ir::TransitionSystem& ts, const AcceleratorInterface& acc,
                   const AqedOptions& options) {
  // Map from bad index to bug kind as we instrument.
  std::vector<std::pair<uint32_t, BugKind>> kinds;

  if (options.check_fc) {
    const FcInstrumentation fc = InstrumentFc(ts, acc, options.fc);
    kinds.emplace_back(fc.fc_bad_index, BugKind::kFunctionalConsistency);
    if (fc.has_early_output_bad) {
      kinds.emplace_back(fc.early_output_bad_index, BugKind::kEarlyOutput);
    }
  }
  if (options.rb.has_value()) {
    RbOptions rb_options = *options.rb;
    if (rb_options.progress_qualifier == ir::kNullNode) {
      rb_options.progress_qualifier = acc.progress_qualifier;
    }
    const RbInstrumentation rb = InstrumentRb(ts, acc, rb_options);
    kinds.emplace_back(rb.rb_bad_index, BugKind::kResponseBound);
    if (rb.has_starve_bad) {
      kinds.emplace_back(rb.starve_bad_index, BugKind::kInputStarvation);
    }
  }
  if (options.sac_spec.has_value()) {
    const SacInstrumentation sac =
        InstrumentSac(ts, acc, *options.sac_spec, options.sac);
    kinds.emplace_back(sac.sac_bad_index,
                       BugKind::kSingleActionCorrectness);
  }
  AQED_CHECK(!kinds.empty(), "RunAqed with every property disabled");

  bmc::BmcOptions bmc_options = options.bmc;
  if (bmc_options.bad_filter.empty()) {
    for (const auto& [bad_index, kind] : kinds) {
      bmc_options.bad_filter.push_back(bad_index);
    }
  }

  AqedResult result;
  result.bmc = bmc::RunBmc(ts, bmc_options);
  if (result.bmc.found_bug()) {
    result.bug_found = true;
    for (const auto& [bad_index, kind] : kinds) {
      if (bad_index == result.bmc.trace.bad_index) {
        result.kind = kind;
        break;
      }
    }
  }
  return result;
}

AqedResult CheckAccelerator(const AcceleratorBuilder& build,
                            const AqedOptions& options,
                            std::unique_ptr<ir::TransitionSystem>* out_ts) {
  struct PropertyRun {
    AqedOptions options;
    uint32_t bound;
  };
  // Cheapest property groups first: the RB and SAC monitors are small
  // counters/comparators whose refutations are easy, while FC carries the
  // symbolic orig/dup choice. A deadlocked design is reported in
  // milliseconds by the RB pass instead of after deep FC refutations.
  std::vector<PropertyRun> runs;
  if (options.rb.has_value()) {
    AqedOptions rb_only = options;
    rb_only.check_fc = false;
    rb_only.sac_spec.reset();
    runs.push_back({std::move(rb_only),
                    options.rb_bound ? options.rb_bound
                                     : options.bmc.max_bound});
  }
  if (options.sac_spec.has_value()) {
    AqedOptions sac_only = options;
    sac_only.check_fc = false;
    sac_only.rb.reset();
    runs.push_back({std::move(sac_only),
                    options.sac_bound ? options.sac_bound
                                      : options.bmc.max_bound});
  }
  if (options.check_fc) {
    AqedOptions fc_only = options;
    fc_only.rb.reset();
    fc_only.sac_spec.reset();
    runs.push_back({std::move(fc_only),
                    options.fc_bound ? options.fc_bound
                                     : options.bmc.max_bound});
  }
  AQED_CHECK(!runs.empty(), "CheckAccelerator with every property disabled");

  AqedResult combined;
  double total_seconds = 0;
  uint64_t total_conflicts = 0;
  for (const PropertyRun& run : runs) {
    auto ts = std::make_unique<ir::TransitionSystem>();
    const AcceleratorInterface acc = build(*ts);
    AqedOptions run_options = run.options;
    run_options.bmc.max_bound = run.bound;
    AqedResult result = RunAqed(*ts, acc, run_options);
    total_seconds += result.bmc.seconds;
    total_conflicts += result.bmc.conflicts;
    const bool last = &run == &runs.back();
    if (result.bug_found || last) {
      result.bmc.seconds = total_seconds;
      result.bmc.conflicts = total_conflicts;
      if (out_ts != nullptr) *out_ts = std::move(ts);
      return result;
    }
  }
  return combined;  // unreachable
}

}  // namespace aqed::core
