#include "aqed/checker.h"

#include <utility>

#include "sched/session.h"
#include "support/status.h"
#include "telemetry/telemetry.h"

namespace aqed::core {

const char* BugKindName(BugKind kind) {
  switch (kind) {
    case BugKind::kNone:
      return "none";
    case BugKind::kFunctionalConsistency:
      return "FC";
    case BugKind::kEarlyOutput:
      return "FC(early-output)";
    case BugKind::kResponseBound:
      return "RB";
    case BugKind::kInputStarvation:
      return "RB(starvation)";
    case BugKind::kSingleActionCorrectness:
      return "SAC";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Options validation + fluent builder
// ---------------------------------------------------------------------------

Status AqedOptions::Validate() const {
  if (!check_fc && !rb.has_value() && !sac_spec.has_value()) {
    return Status::Error("every property is disabled");
  }
  if (bmc.max_bound == 0) {
    return Status::Error("bmc.max_bound must be at least 1");
  }
  const auto check_bound = [&](uint32_t bound, bool enabled,
                               const char* name) {
    if (bound == 0) return Status::Ok();
    if (!enabled) {
      return Status::Error(std::string(name) +
                                     " set for a property that is not "
                                     "enabled");
    }
    if (bound > bmc.max_bound) {
      return Status::Error(std::string(name) +
                                     " exceeds bmc.max_bound");
    }
    return Status::Ok();
  };
  if (Status s = check_bound(fc_bound, check_fc, "fc_bound"); !s.ok()) {
    return s;
  }
  if (Status s = check_bound(rb_bound, rb.has_value(), "rb_bound"); !s.ok()) {
    return s;
  }
  if (Status s = check_bound(sac_bound, sac_spec.has_value(), "sac_bound");
      !s.ok()) {
    return s;
  }
  if (rb.has_value() && rb->tau == 0) {
    return Status::Error("rb.tau must be at least 1");
  }
  if (bmc.cube.enabled) {
    if (bmc.cube.conflict_threshold <= 0) {
      return Status::Error(
          "cube.conflict_threshold must be positive when cubes are enabled");
    }
    if (bmc.cube.num_split_vars == 0 || bmc.cube.num_split_vars > 16) {
      return Status::Error("cube.num_split_vars must be in [1, 16]");
    }
  }
  if (rb.has_value() && rb->in_min == 0) {
    return Status::Error("rb.in_min must be at least 1");
  }
  return Status::Ok();
}

AqedOptions::Builder& AqedOptions::Builder::WithFc(FcOptions fc) {
  options_.check_fc = true;
  options_.fc = std::move(fc);
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithoutFc() {
  options_.check_fc = false;
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithRb(RbOptions rb) {
  options_.rb = std::move(rb);
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithSacSpec(SpecFn spec,
                                                        SacOptions sac) {
  options_.sac_spec = std::move(spec);
  options_.sac = std::move(sac);
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithBound(uint32_t max_bound) {
  options_.bmc.max_bound = max_bound;
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithFcBound(uint32_t bound) {
  options_.fc_bound = bound;
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithRbBound(uint32_t bound) {
  options_.rb_bound = bound;
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithSacBound(uint32_t bound) {
  options_.sac_bound = bound;
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithConflictBudget(
    int64_t budget) {
  options_.bmc.conflict_budget = budget;
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithCubes(
    bmc::BmcOptions::CubeEscalation cube) {
  cube.enabled = true;
  options_.bmc.cube = cube;
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithPreprocessing(bool enabled) {
  options_.bmc.use_preprocessing = enabled;
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithValidation(
    bool replay_counterexamples) {
  options_.bmc.validate_counterexamples = replay_counterexamples;
  return *this;
}

AqedOptions::Builder& AqedOptions::Builder::WithSolverOptions(
    sat::Solver::Options solver_options) {
  options_.bmc.solver_options = std::move(solver_options);
  return *this;
}

AqedOptions AqedOptions::Builder::Build() const {
  const Status valid = options_.Validate();
  AQED_CHECK(valid.ok(), "AqedOptions::Builder: " + valid.message());
  return options_;
}

// ---------------------------------------------------------------------------
// SessionOptions: validation + fluent builder
// ---------------------------------------------------------------------------

Status SessionOptions::Validate() const {
  // The flight recorder's samples are exported exclusively through the
  // metrics JSONL; arming it with nowhere to land them is a silent no-op
  // the caller certainly did not intend.
  if (sample_period_ms > 0 && metrics_path.empty()) {
    return Status::Error(
        "sample_period_ms set without a metrics_path to export the samples");
  }
  // A retry cap below the starting budget makes the escalation ladder
  // degenerate: the first doubling would immediately clamp back under the
  // value the first attempt already failed with.
  if (retry.max_deadline_ms > 0 && deadline_ms > retry.max_deadline_ms) {
    return Status::Error("retry.max_deadline_ms is below deadline_ms");
  }
  // Retry caps without retries are dead configuration — either a forgotten
  // WithRetries or a typo'd field.
  if (retry.max_retries == 0 &&
      (retry.max_deadline_ms > 0 || retry.max_conflict_budget > 0)) {
    return Status::Error("retry caps set with max_retries == 0");
  }
  return Status::Ok();
}

SessionOptions::Builder& SessionOptions::Builder::WithJobs(uint32_t jobs) {
  options_.jobs = jobs;
  explicit_zero_jobs_ = jobs == 0;
  return *this;
}

SessionOptions::Builder& SessionOptions::Builder::WithHardwareJobs() {
  options_.jobs = 0;
  explicit_zero_jobs_ = false;
  return *this;
}

SessionOptions::Builder& SessionOptions::Builder::WithCancelPolicy(
    SessionOptions::CancelPolicy policy) {
  options_.cancel = policy;
  return *this;
}

SessionOptions::Builder& SessionOptions::Builder::WithDeadlineMs(
    int64_t deadline_ms) {
  if (deadline_ms < 0 || deadline_ms > UINT32_MAX) {
    negative_argument_ = true;
    return *this;
  }
  options_.deadline_ms = static_cast<uint32_t>(deadline_ms);
  return *this;
}

SessionOptions::Builder& SessionOptions::Builder::WithMemoryBudgetMb(
    int64_t budget_mb) {
  if (budget_mb < 0 || budget_mb > UINT32_MAX) {
    negative_argument_ = true;
    return *this;
  }
  options_.memory_budget_mb = static_cast<uint32_t>(budget_mb);
  return *this;
}

SessionOptions::Builder& SessionOptions::Builder::WithTracePath(
    std::string path) {
  options_.trace_path = std::move(path);
  return *this;
}

SessionOptions::Builder& SessionOptions::Builder::WithMetricsPath(
    std::string path) {
  options_.metrics_path = std::move(path);
  return *this;
}

SessionOptions::Builder& SessionOptions::Builder::WithSamplePeriodMs(
    int64_t period_ms) {
  if (period_ms < 0 || period_ms > UINT32_MAX) {
    negative_argument_ = true;
    return *this;
  }
  options_.sample_period_ms = static_cast<uint32_t>(period_ms);
  return *this;
}

SessionOptions::Builder& SessionOptions::Builder::WithRetries(
    uint32_t max_retries) {
  options_.retry.max_retries = max_retries;
  return *this;
}

SessionOptions::Builder& SessionOptions::Builder::WithRetryPolicy(
    SessionOptions::RetryPolicy retry) {
  options_.retry = retry;
  return *this;
}

Status SessionOptions::Builder::Validate() const {
  if (negative_argument_) {
    return Status::Error(
        "a negative (or overflowing) deadline/budget/period was given");
  }
  if (explicit_zero_jobs_) {
    return Status::Error(
        "WithJobs(0): say WithHardwareJobs() for hardware concurrency");
  }
  return options_.Validate();
}

SessionOptions SessionOptions::Builder::Build() const {
  const Status valid = Validate();
  AQED_CHECK(valid.ok(), "SessionOptions::Builder: " + valid.message());
  return options_;
}

// ---------------------------------------------------------------------------
// RunAqed: one combined model over every requested property
// ---------------------------------------------------------------------------

AqedResult RunAqed(ir::TransitionSystem& ts, const AcceleratorInterface& acc,
                   const AqedOptions& options) {
  // Map from bad index to bug kind as we instrument.
  std::vector<std::pair<uint32_t, BugKind>> kinds;

  telemetry::Span instrument_span("aqed.instrument");
  if (options.check_fc) {
    const FcInstrumentation fc = InstrumentFc(ts, acc, options.fc);
    kinds.emplace_back(fc.fc_bad_index, BugKind::kFunctionalConsistency);
    if (fc.has_early_output_bad) {
      kinds.emplace_back(fc.early_output_bad_index, BugKind::kEarlyOutput);
    }
  }
  if (options.rb.has_value()) {
    RbOptions rb_options = *options.rb;
    if (rb_options.progress_qualifier == ir::kNullNode) {
      rb_options.progress_qualifier = acc.progress_qualifier;
    }
    const RbInstrumentation rb = InstrumentRb(ts, acc, rb_options);
    kinds.emplace_back(rb.rb_bad_index, BugKind::kResponseBound);
    if (rb.has_starve_bad) {
      kinds.emplace_back(rb.starve_bad_index, BugKind::kInputStarvation);
    }
  }
  if (options.sac_spec.has_value()) {
    const SacInstrumentation sac =
        InstrumentSac(ts, acc, *options.sac_spec, options.sac);
    kinds.emplace_back(sac.sac_bad_index,
                       BugKind::kSingleActionCorrectness);
  }
  AQED_CHECK(!kinds.empty(), "RunAqed with every property disabled");
  instrument_span.End();

  bmc::BmcOptions bmc_options = options.bmc;
  if (bmc_options.bad_filter.empty()) {
    for (const auto& [bad_index, kind] : kinds) {
      bmc_options.bad_filter.push_back(bad_index);
    }
  }

  AqedResult result;
  result.bmc = bmc::RunBmc(ts, bmc_options);
  if (result.bmc.found_bug()) {
    result.bug_found = true;
    for (const auto& [bad_index, kind] : kinds) {
      if (bad_index == result.bmc.trace.bad_index) {
        result.kind = kind;
        break;
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// SessionResult accessors
// ---------------------------------------------------------------------------

const JobResult* SessionResult::FirstBug(size_t entry) const {
  for (const JobResult& job : jobs) {
    if (job.entry == entry && job.result.bug_found) return &job;
  }
  return nullptr;
}

const JobResult& SessionResult::Reported(size_t entry) const {
  if (const JobResult* bug = FirstBug(entry)) return *bug;
  const JobResult* reported = nullptr;
  for (const JobResult& job : jobs) {
    if (job.entry != entry) continue;
    // Prefer the last *completed* job (its transition system exists for
    // trace/report formatting); fall back to the last job if everything
    // was cancelled before starting.
    if (reported == nullptr || !job.cancelled || reported->cancelled) {
      reported = &job;
    }
  }
  AQED_CHECK(reported != nullptr,
             "SessionResult::Reported: no jobs for entry");
  return *reported;
}

bool SessionResult::bug_found(size_t entry) const {
  return FirstBug(entry) != nullptr;
}

BugKind SessionResult::kind(size_t entry) const {
  const JobResult* bug = FirstBug(entry);
  return bug ? bug->result.kind : BugKind::kNone;
}

uint32_t SessionResult::cex_cycles(size_t entry) const {
  const JobResult* bug = FirstBug(entry);
  return bug ? bug->result.cex_cycles() : 0;
}

UnknownReason SessionResult::unknown_reason(size_t entry) const {
  if (bug_found(entry)) return UnknownReason::kNone;
  for (const JobResult& job : jobs) {
    if (job.entry == entry &&
        job.result.bmc.outcome == bmc::BmcResult::Outcome::kUnknown) {
      return job.unknown_reason;
    }
  }
  return UnknownReason::kNone;
}

size_t SessionResult::num_unknown() const {
  size_t unknown = 0;
  for (const JobResult& job : jobs) {
    // Jobs cancelled because a sibling already found the entry's bug are
    // decided, not unknown — first-bug-wins is the intended outcome there.
    if (job.result.bmc.outcome == bmc::BmcResult::Outcome::kUnknown &&
        !bug_found(job.entry)) {
      ++unknown;
    }
  }
  return unknown;
}

const AqedResult& SessionResult::aqed(size_t entry) const {
  return Reported(entry).result;
}

const ir::TransitionSystem& SessionResult::ts(size_t entry) const {
  const JobResult& reported = Reported(entry);
  AQED_CHECK(reported.ts != nullptr,
             "SessionResult::ts: reported job never ran (cancelled)");
  return *reported.ts;
}

double SessionResult::solver_seconds(size_t entry) const {
  double total = 0;
  for (const JobResult& job : jobs) {
    if (job.entry == entry) total += job.result.bmc.seconds;
  }
  return total;
}

uint64_t SessionResult::conflicts(size_t entry) const {
  uint64_t total = 0;
  for (const JobResult& job : jobs) {
    if (job.entry == entry) total += job.result.bmc.conflicts;
  }
  return total;
}

// ---------------------------------------------------------------------------
// CheckAccelerator: thin wrapper over a single-entry session
// ---------------------------------------------------------------------------

SessionResult CheckAccelerator(const AcceleratorBuilder& build,
                               const AqedOptions& options,
                               const SessionOptions& session_options) {
  sched::VerificationSession session(session_options);
  session.Enqueue(build, options);
  return session.Wait();
}

}  // namespace aqed::core
