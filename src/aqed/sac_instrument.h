// Single-Action-Correctness (SAC) instrumentation — paper Def. 7.
//
// SAC closes the gap between self-consistency and full functional
// correctness (Proposition 1: FC + RB + SAC + strong connectedness =>
// total correctness w.r.t. a specification). Unlike FC/RB it needs a
// specification, but only a combinational input->output function, not a
// sequential golden model.
//
// The monitor constrains the environment to Def. 7's input shape — one valid
// transaction presented from reset, nop afterwards — latches the captured
// action/data, and checks that the first captured output batch equals
// Spec(action, data).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "aqed/interface.h"
#include "ir/transition_system.h"

namespace aqed::core {

// Builds the expected output for one batch element: given the element's
// input words (IR nodes in `ctx`), returns the expected output words.
using SpecFn = std::function<std::vector<ir::NodeRef>(
    ir::Context& ctx, const std::vector<ir::NodeRef>& elem_inputs)>;

struct SacOptions {
  std::string label = "aqed_sac";
};

struct SacInstrumentation {
  uint32_t sac_bad_index = 0;
  ir::NodeRef got_input = ir::kNullNode;  // transaction captured
  ir::NodeRef first_out_event = ir::kNullNode;
};

// Adds the SAC monitor to `ts`. The spec is applied per batch element to the
// latched captured inputs. Shared-context signals are passed to `spec`
// appended after the element inputs.
SacInstrumentation InstrumentSac(ir::TransitionSystem& ts,
                                 const AcceleratorInterface& acc,
                                 const SpecFn& spec,
                                 const SacOptions& options = {});

}  // namespace aqed::core
