// Response-Bound (RB) instrumentation — paper Sec. III.B / IV.C.
//
// Checks the two halves of the responsiveness property (Def. 3):
//
//   Part 1 (host starvation): the accelerator's input-ready signal `rdin`
//   may never stay low for `rdin_bound` consecutive cycles.
//
//   Part 2 (output starvation): after a symbolically chosen input I is
//   captured, once the host has been ready for `tau` cycles and at least
//   `in_min` further input batches have been captured, the output for I must
//   have been produced:
//
//       (cnt_rdh >= tau) && (cnt_in >= in_min) -> rdy_out
//
// `tau` is the design's response bound (the only design parameter A-QED
// needs); `in_min` covers accelerators that require several inputs before
// producing any output (e.g. windowed stencils).
#pragma once

#include <cstdint>
#include <string>

#include "aqed/interface.h"
#include "ir/transition_system.h"

namespace aqed::core {

struct RbOptions {
  // Part 2: maximum host-ready cycles the accelerator may take to produce
  // the output of a captured input.
  uint32_t tau = 8;
  // Part 2: minimum number of captured input batches (including the tracked
  // one) before any output is expected.
  uint32_t in_min = 1;
  // Part 1: maximum consecutive cycles `rdin` may stay low. 0 disables the
  // part-1 check.
  uint32_t rdin_bound = 0;
  // Optional design signal (e.g. a host clock-enable) that qualifies
  // progress: cycles where it is low count toward neither tau nor the
  // part-1 streak — the design-specific A-QED customization of Sec. V.A.
  ir::NodeRef progress_qualifier = ir::kNullNode;
  std::string label = "aqed_rb";
};

struct RbInstrumentation {
  uint32_t rb_bad_index = 0;        // part 2 violation
  uint32_t starve_bad_index = 0;    // part 1 violation (if enabled)
  bool has_starve_bad = false;

  ir::NodeRef is_tracked = ir::kNullNode;  // free monitor control input
  ir::NodeRef tracked_labeled = ir::kNullNode;
  ir::NodeRef cnt_rdh = ir::kNullNode;
  ir::NodeRef cnt_in = ir::kNullNode;
  ir::NodeRef rdy_out = ir::kNullNode;
};

RbInstrumentation InstrumentRb(ir::TransitionSystem& ts,
                               const AcceleratorInterface& acc,
                               const RbOptions& options);

}  // namespace aqed::core
