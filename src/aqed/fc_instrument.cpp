#include "aqed/fc_instrument.h"

#include "aqed/monitor_util.h"
#include "support/status.h"

namespace aqed::core {

using ir::Context;
using ir::NodeRef;
using ir::Sort;

FcInstrumentation InstrumentFc(ir::TransitionSystem& ts,
                               const AcceleratorInterface& acc,
                               const FcOptions& options) {
  const Status valid = acc.Validate(ts);
  AQED_CHECK(valid.ok(), "InstrumentFc: " + valid.message());
  Context& ctx = ts.ctx();
  FcInstrumentation fc;

  const uint32_t batch = acc.batch_size();
  const uint32_t idx_width = IndexWidth(batch);
  const size_t in_size = acc.data_elems[0].size();
  const size_t out_size = acc.out_elems[0].size();

  // --- monitor control inputs (chosen freely by the BMC engine) ---------
  fc.is_orig = ts.AddInput(options.label + ".is_orig", Sort::BitVec(1));
  fc.is_dup = ts.AddInput(options.label + ".is_dup", Sort::BitVec(1));
  fc.orig_idx = ts.AddInput(options.label + ".orig_idx",
                            Sort::BitVec(idx_width));
  fc.dup_idx = ts.AddInput(options.label + ".dup_idx",
                           Sort::BitVec(idx_width));
  if (batch < (uint64_t{1} << idx_width)) {
    const NodeRef bound = ctx.Const(idx_width, batch);
    ts.AddConstraint(ctx.Ult(fc.orig_idx, bound));
    ts.AddConstraint(ctx.Ult(fc.dup_idx, bound));
  }

  // --- capture events ----------------------------------------------------
  const NodeRef capture_in = ctx.And(acc.in_valid, acc.in_ready);
  const NodeRef capture_out = ctx.And(acc.out_valid, acc.host_ready);

  // --- monitor state -----------------------------------------------------
  const NodeRef orig_labeled = Reg(ts, options.label + ".orig_labeled", 1, 0);
  const NodeRef dup_labeled = Reg(ts, options.label + ".dup_labeled", 1, 0);
  const NodeRef orig_done = Reg(ts, options.label + ".orig_done", 1, 0);
  const NodeRef dup_done = Reg(ts, options.label + ".dup_done", 1, 0);
  const NodeRef batch_ct =
      Reg(ts, options.label + ".batch_ct", kCounterWidth, 0);
  const NodeRef out_batch_ct =
      Reg(ts, options.label + ".out_batch_ct", kCounterWidth, 0);
  const NodeRef orig_batch =
      Reg(ts, options.label + ".ORIG_BATCH", kCounterWidth, 0);
  const NodeRef dup_batch =
      Reg(ts, options.label + ".DUP_BATCH", kCounterWidth, 0);
  const NodeRef orig_idx_reg =
      Reg(ts, options.label + ".ORIG_IDX", idx_width, 0);
  std::vector<NodeRef> orig_val(in_size);
  for (size_t w = 0; w < in_size; ++w) {
    orig_val[w] = Reg(ts, options.label + ".orig_val" + std::to_string(w),
                      ctx.width(acc.data_elems[0][w]), 0);
  }
  std::vector<NodeRef> orig_ctx_val(acc.shared_context.size());
  for (size_t c = 0; c < acc.shared_context.size(); ++c) {
    orig_ctx_val[c] =
        Reg(ts, options.label + ".orig_ctx" + std::to_string(c),
            ctx.width(acc.shared_context[c]), 0);
  }
  std::vector<NodeRef> orig_out(out_size);
  for (size_t w = 0; w < out_size; ++w) {
    orig_out[w] = Reg(ts, options.label + ".orig_out" + std::to_string(w),
                      ctx.width(acc.out_elems[0][w]), 0);
  }

  // --- aqed_in: label the original and the duplicate ----------------------
  const std::vector<NodeRef> elem_at_orig_idx =
      MuxByIndex(ctx, fc.orig_idx, acc.data_elems);
  const std::vector<NodeRef> elem_at_dup_idx =
      MuxByIndex(ctx, fc.dup_idx, acc.data_elems);

  const NodeRef label_orig =
      ctx.And(ctx.And(fc.is_orig, capture_in), ctx.Not(orig_labeled));

  // Duplicate data must equal the original's: against the latched value
  // when the original was captured in an earlier batch, or directly against
  // the original element when both live in the same (current) batch.
  const NodeRef match_latched =
      ctx.And(AllEqual(ctx, elem_at_dup_idx, orig_val),
              AllEqual(ctx, acc.shared_context, orig_ctx_val));
  const NodeRef match_same_cycle =
      ctx.And(AllEqual(ctx, elem_at_dup_idx, elem_at_orig_idx),
              ctx.Ne(fc.dup_idx, fc.orig_idx));
  const NodeRef label_dup = ctx.And(
      ctx.And(ctx.And(fc.is_dup, capture_in), ctx.Not(dup_labeled)),
      ctx.Or(ctx.And(orig_labeled, match_latched),
             ctx.And(label_orig, match_same_cycle)));

  LatchWhen(ts, orig_labeled, label_orig, ctx.True());
  LatchWhen(ts, orig_batch, label_orig, batch_ct);
  LatchWhen(ts, orig_idx_reg, label_orig, fc.orig_idx);
  for (size_t w = 0; w < in_size; ++w) {
    LatchWhen(ts, orig_val[w], label_orig, elem_at_orig_idx[w]);
  }
  for (size_t c = 0; c < acc.shared_context.size(); ++c) {
    LatchWhen(ts, orig_ctx_val[c], label_orig, acc.shared_context[c]);
  }
  LatchWhen(ts, dup_labeled, label_dup, ctx.True());
  LatchWhen(ts, dup_batch, label_dup, batch_ct);
  CountWhen(ts, batch_ct, capture_in);

  // --- aqed_out: record the original's output, check the duplicate's ------
  const std::vector<NodeRef> out_at_orig_idx =
      MuxByIndex(ctx, orig_idx_reg, acc.out_elems);

  const NodeRef orig_out_event =
      ctx.And(ctx.And(capture_out, orig_labeled),
              ctx.And(ctx.Not(orig_done), ctx.Eq(out_batch_ct, orig_batch)));
  LatchWhen(ts, orig_done, orig_out_event, ctx.True());
  for (size_t w = 0; w < out_size; ++w) {
    LatchWhen(ts, orig_out[w], orig_out_event, out_at_orig_idx[w]);
  }

  // The duplicate's output element arrives when its batch completes. Note
  // dup_idx is only meaningful in the cycle the duplicate was labeled; latch
  // it like the original's index.
  const NodeRef dup_idx_reg =
      Reg(ts, options.label + ".DUP_IDX", idx_width, 0);
  LatchWhen(ts, dup_idx_reg, label_dup, fc.dup_idx);
  const std::vector<NodeRef> out_at_dup_idx =
      MuxByIndex(ctx, dup_idx_reg, acc.out_elems);

  fc.dup_done_event =
      ctx.And(ctx.And(capture_out, dup_labeled),
              ctx.And(ctx.Not(dup_done), ctx.Eq(out_batch_ct, dup_batch)));
  LatchWhen(ts, dup_done, fc.dup_done_event, ctx.True());
  CountWhen(ts, out_batch_ct, capture_out);

  // Same-batch originals complete in the same output batch as the
  // duplicate: compare live; otherwise compare against the latched output.
  const NodeRef same_batch = ctx.Eq(orig_batch, dup_batch);
  NodeRef outputs_match = ctx.True();
  for (size_t w = 0; w < out_size; ++w) {
    const NodeRef expected =
        ctx.Ite(same_batch, out_at_orig_idx[w], orig_out[w]);
    outputs_match = ctx.And(outputs_match, ctx.Eq(out_at_dup_idx[w], expected));
  }
  fc.fc_check = outputs_match;
  fc.orig_labeled = orig_labeled;
  fc.dup_labeled = dup_labeled;

  const NodeRef fc_violation =
      ctx.And(fc.dup_done_event, ctx.Not(outputs_match));
  fc.fc_bad_index = ts.AddBad(fc_violation, options.label);

  if (options.check_early_output) {
    // Strengthened FC (footnote 1): an output batch whose input batch has
    // not been captured yet is a bug. A same-cycle capture (combinational
    // completion) is tolerated.
    const NodeRef early = ctx.And(
        capture_out,
        ctx.Or(ctx.Ugt(out_batch_ct, batch_ct),
               ctx.And(ctx.Eq(out_batch_ct, batch_ct), ctx.Not(capture_in))));
    fc.early_output_bad_index =
        ts.AddBad(early, options.label + "_early_output");
    fc.has_early_output_bad = true;
  }

  return fc;
}

}  // namespace aqed::core
