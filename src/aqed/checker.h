// Top-level A-QED checker facade.
//
// Given an accelerator transition system and its interface description, the
// checker instruments the requested universal properties (FC always unless
// disabled; RB and SAC optionally), runs BMC, and decodes the outcome into a
// per-property verdict with a validated minimum-length counterexample.
//
// This is the A-QED analogue of "write the aqed_top C++ harness and hand the
// result to the model checker" in the paper's HLS flow.
//
// The preferred top-level entry point, CheckAccelerator, decomposes a check
// into one independent verification job per enabled property group and
// submits them to a sched::VerificationSession (see sched/session.h), which
// can run them concurrently with first-bug-wins cancellation. It returns a
// SessionResult aggregating *all* per-property verdicts, and owning the
// instrumented transition system of every completed run (for trace
// formatting) — there are no out-parameters.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aqed/fc_instrument.h"
#include "aqed/interface.h"
#include "aqed/rb_instrument.h"
#include "aqed/sac_instrument.h"
#include "bmc/engine.h"
#include "ir/transition_system.h"
#include "support/stats.h"

namespace aqed::core {

// Which universal property a counterexample violated.
enum class BugKind {
  kNone,
  kFunctionalConsistency,  // dup output differs from orig output
  kEarlyOutput,            // output produced before its input (FC footnote 1)
  kResponseBound,          // output did not arrive within tau (RB part 2)
  kInputStarvation,        // rdin stayed low beyond the bound (RB part 1)
  kSingleActionCorrectness,
};

const char* BugKindName(BugKind kind);

struct AqedOptions {
  bool check_fc = true;
  FcOptions fc;
  std::optional<RbOptions> rb;        // engaged when set
  std::optional<SpecFn> sac_spec;     // engaged when set
  SacOptions sac;
  bmc::BmcOptions bmc;
  // Per-property bound overrides for CheckAccelerator (0 = bmc.max_bound).
  // RB counterexamples sit `tau` cycles deeper than FC ones, so they
  // typically need a larger bound.
  uint32_t fc_bound = 0;
  uint32_t rb_bound = 0;
  uint32_t sac_bound = 0;

  class Builder;

  // The invariants Builder::Build() enforces, in non-fatal form: useful for
  // validating options assembled by struct-poking legacy call sites.
  Status Validate() const;
};

// Fluent construction with Build()-time validation. The built product is
// the plain AqedOptions struct, so call sites can migrate incrementally —
// anything accepting AqedOptions accepts a Builder-made one.
//
//   const auto options = AqedOptions::Builder()
//                            .WithRb({.tau = 12})
//                            .WithBound(64)
//                            .WithRbBound(24)
//                            .Build();
//
// Build() aborts (AQED_CHECK) on incoherent requests: a per-property bound
// override above bmc.max_bound, a bound override for a property that is not
// enabled, an RB request with tau == 0, every property disabled, and so on.
// Use Validate() for the non-fatal form of the same checks.
class AqedOptions::Builder {
 public:
  Builder() = default;
  // Seeds the builder from an existing options struct (incremental
  // migration: tweak a legacy configuration fluently, re-validated).
  explicit Builder(AqedOptions seed) : options_(std::move(seed)) {}

  Builder& WithFc(FcOptions fc = {});      // enable FC (on by default)
  Builder& WithoutFc();                    // disable FC
  Builder& WithRb(RbOptions rb);           // enable RB
  Builder& WithSacSpec(SpecFn spec, SacOptions sac = {});  // enable SAC
  Builder& WithBound(uint32_t max_bound);  // global BMC bound
  Builder& WithFcBound(uint32_t bound);    // per-property overrides
  Builder& WithRbBound(uint32_t bound);
  Builder& WithSacBound(uint32_t bound);
  Builder& WithConflictBudget(int64_t budget);
  // Cube-and-conquer escalation for stalled depths (intra-property
  // parallelism; see bmc::BmcOptions::CubeEscalation). enabled is set for
  // the caller.
  Builder& WithCubes(bmc::BmcOptions::CubeEscalation cube);
  Builder& WithPreprocessing(bool enabled);
  Builder& WithValidation(bool replay_counterexamples);
  Builder& WithSolverOptions(sat::Solver::Options solver_options);

  // Non-fatal validation of the current state (see AqedOptions::Validate).
  Status Validate() const { return options_.Validate(); }

  // Validates and returns the built options; aborts on violations.
  AqedOptions Build() const;

 private:
  AqedOptions options_;
};

struct AqedResult {
  bool bug_found = false;
  BugKind kind = BugKind::kNone;
  bmc::BmcResult bmc;

  // Counterexample length in clock cycles (0 when no bug). A bug found at
  // BMC depth d has a trace of d + 1 cycles — in particular a cycle-0
  // counterexample (bad state in the initial frame) reports length 1,
  // never 0; see the depth-zero regression tests in aqed_core_test.
  uint32_t cex_cycles() const {
    return bug_found ? bmc.trace.length() : 0;
  }
};

// Instruments `ts` in place and runs BMC over all generated properties in
// one combined model. `ts` must already contain the accelerator; the
// monitors are added on top (pre-silicon only — the A-QED module never
// ships with the design).
AqedResult RunAqed(ir::TransitionSystem& ts, const AcceleratorInterface& acc,
                   const AqedOptions& options);

// Builds the accelerator into the given (fresh) transition system and
// returns its interface. Sessions running jobs concurrently call the
// builder from worker threads (each invocation on its own fresh transition
// system), so builders must not mutate shared state.
using AcceleratorBuilder =
    std::function<AcceleratorInterface(ir::TransitionSystem&)>;

// ---------------------------------------------------------------------------
// Verification sessions
// ---------------------------------------------------------------------------

// How a session schedules the verification jobs submitted to it.
struct SessionOptions {
  // Worker threads executing jobs (the `--jobs N` knob). 1 = run jobs
  // inline in submission order (fully deterministic, matches the legacy
  // sequential CheckAccelerator); 0 = hardware concurrency.
  uint32_t jobs = 1;

  // First-bug-wins cancellation scope.
  enum class CancelPolicy {
    kNone,     // every job runs to completion
    kEntry,    // a bug cancels the remaining jobs of the same Enqueue()
    kSession,  // a bug cancels every outstanding job (portfolio hunts)
  };
  CancelPolicy cancel = CancelPolicy::kEntry;

  // Per-job wall-clock deadline in milliseconds (0 = none). A watchdog
  // thread trips the job's cancellation token when the deadline expires;
  // the job observes it at its next poll point (BMC depth boundary / SAT
  // search loop) and reports kUnknown with reason kDeadline. This is what
  // keeps one hard SAT instance from stalling a whole session.
  uint32_t deadline_ms = 0;

  // Process-RSS budget in MiB (0 = ungoverned). A governor thread
  // (sched/memory_governor.h) polls the resource probes against this
  // budget while Wait() runs and degrades in stages: at 75% solvers shed
  // learnt clauses and compact their arenas, at 90% the BMC engine stops
  // escalating into cube fan-outs, and at 100% the heaviest job is
  // cancelled with UnknownReason::kMemoryBudget (never retried) — a
  // governed verdict instead of the OOM killer's.
  uint32_t memory_budget_mb = 0;

  // Telemetry sinks (src/telemetry). Setting either path flips the
  // process-wide telemetry switch on; at the end of every Wait() the
  // session drains the span log into its own event log and (re)writes:
  //   trace_path   — Chrome trace-event JSON of every span recorded so far
  //                  (open in Perfetto / chrome://tracing),
  //   metrics_path — a JSONL snapshot of the global metrics registry.
  // Empty (the default) records nothing and costs one relaxed load per
  // instrumentation site. See the "Observability" section of README.md.
  std::string trace_path;
  std::string metrics_path;

  // Flight-recorder sampling period in milliseconds (0 = off). When set —
  // and telemetry is armed via the paths above — a background sampler
  // snapshots the metrics registry and the process resource probes
  // (RSS / CPU time / thread count, telemetry/resource.h) every period
  // while Wait() runs; the samples are exported as the `timeseries`
  // section of the metrics JSONL and plotted by the aqed-report tool.
  uint32_t sample_period_ms = 0;

  // Escalating-budget retry policy for inconclusive jobs. A job that ends
  // kUnknown because its conflict budget or deadline ran out (never because
  // a sibling's bug cancelled it) is re-queued with its conflict budget and
  // deadline doubled, up to `max_retries` extra attempts and the configured
  // caps. Retried attempts are accounted separately in SessionStats; the
  // job's final JobResult reflects the last attempt.
  struct RetryPolicy {
    uint32_t max_retries = 0;          // extra attempts per unknown job
    int64_t max_conflict_budget = -1;  // doubling cap (-1 = uncapped)
    uint32_t max_deadline_ms = 0;      // doubling cap (0 = uncapped)
  };
  RetryPolicy retry;

  class Builder;

  // The coherence rules Builder::Build() enforces, in non-fatal form:
  // a flight-recorder sampling period without a metrics file to land the
  // samples in, retry caps below the budgets they are supposed to cap, and
  // so on. VerificationSession's constructor checks this, so struct-poked
  // legacy options get the same screening as Builder-made ones.
  Status Validate() const;
};

// Fluent construction with Build()-time validation, mirroring
// AqedOptions::Builder: the built product is the plain SessionOptions
// struct, so anything accepting SessionOptions accepts a Builder-made one.
//
//   const auto session = core::SessionOptions::Builder()
//                            .WithJobs(8)
//                            .WithDeadlineMs(2000)
//                            .WithRetries(4)
//                            .Build();
//
// Build() aborts (AQED_CHECK) on incoherent requests: WithJobs(0) (say
// WithHardwareJobs() when you mean "all cores" — a literal zero is almost
// always a forgotten flag value), a sample period without a metrics path,
// negative deadlines or budgets fed through the int64 parameters, and retry
// caps that undercut the starting deadline. Use Validate() for the
// non-fatal form of the same checks.
class SessionOptions::Builder {
 public:
  Builder() = default;
  // Seeds the builder from an existing options struct (incremental
  // migration: tweak a legacy configuration fluently, re-validated).
  explicit Builder(SessionOptions seed) : options_(std::move(seed)) {}

  Builder& WithJobs(uint32_t jobs);        // rejects 0 at Build() time
  Builder& WithHardwareJobs();             // one worker per hardware thread
  Builder& WithCancelPolicy(SessionOptions::CancelPolicy policy);
  Builder& WithDeadlineMs(int64_t deadline_ms);         // rejects negatives
  Builder& WithMemoryBudgetMb(int64_t budget_mb);       // rejects negatives
  Builder& WithTracePath(std::string path);
  Builder& WithMetricsPath(std::string path);
  Builder& WithSamplePeriodMs(int64_t period_ms);       // rejects negatives
  Builder& WithRetries(uint32_t max_retries);
  Builder& WithRetryPolicy(SessionOptions::RetryPolicy retry);

  // Non-fatal validation of the current state (see SessionOptions::Validate).
  Status Validate() const;

  // Validates and returns the built options; aborts on violations.
  SessionOptions Build() const;

 private:
  SessionOptions options_;
  // Builder-only screens: the struct keeps jobs == 0 as the documented
  // "hardware concurrency" sentinel (benches pass --jobs 0 on purpose), but
  // a *constructed* configuration asking for zero workers is a bug unless
  // it went through WithHardwareJobs().
  bool explicit_zero_jobs_ = false;
  bool negative_argument_ = false;
};

// Typed handle to one VerificationSession entry — the unit an Enqueue()
// call creates. Replaces the bare size_t the session used to return: the
// handle carries the label it was enqueued under (for reports and error
// messages) and makes it impossible to feed a job count, loop counter, or
// other stray integer to a SessionResult accessor unnoticed. The wrapped
// index is still reachable (index()) for map keys and legacy call sites.
class JobHandle {
 public:
  JobHandle() = default;
  JobHandle(size_t index, std::string label)
      : index_(index), label_(std::move(label)) {}

  size_t index() const { return index_; }
  const std::string& label() const { return label_; }

  bool operator==(const JobHandle& other) const {
    return index_ == other.index_;
  }

 private:
  size_t index_ = 0;
  std::string label_;
};

// Outcome of one verification job (one property group on one design copy).
struct JobResult {
  size_t entry = 0;        // index returned by the Enqueue() that spawned it
  std::string label;       // "<entry label>/<property group>"
  AqedResult result;
  bool cancelled = false;  // stopped (or never started) by first-bug-wins
  // Hard failure: the job found a counterexample whose simulator replay
  // failed (BmcResult::trace_validated == false with validation enabled).
  // That is a checker bug, never a design verdict — the bug_found flag is
  // suppressed and the job is counted in SessionStats::num_checker_errors().
  bool checker_error = false;
  // Why the job's verdict is unknown (kNone for a bug / clean verdict):
  // distinguishes a deadline expiry from budget exhaustion from sibling
  // cancellation — the reason code behind BmcResult::Outcome::kUnknown.
  UnknownReason unknown_reason = UnknownReason::kNone;
  // Attempt index of the run this result reflects (0 = first; > 0 means
  // the session's retry policy re-ran the job with escalated budgets).
  uint32_t attempt = 0;
  double wall_seconds = 0; // job wall time inside the scheduler
  // The instrumented transition system of this run (null when the job was
  // cancelled before it started) — owned here so traces can be formatted
  // without out-parameters.
  std::unique_ptr<ir::TransitionSystem> ts;
};

// Aggregated session outcome: every job's verdict, in submission order.
//
// Entry-level accessors mirror the legacy sequential CheckAccelerator
// semantics: the *reported* job of an entry is its first submitted job that
// found a bug (property groups are submitted cheapest-first: RB, SAC, FC),
// or the entry's last completed job when clean.
struct SessionResult {
  std::vector<JobResult> jobs;  // submission order
  size_t num_entries = 0;
  double wall_seconds = 0;      // Wait() wall time for the whole session
  SessionStats stats;           // per-job wall/solver accounting

  // nullptr when no job of `entry` found a bug.
  const JobResult* FirstBug(size_t entry) const;
  // The entry's reported job (first bug, else last completed, else last).
  const JobResult& Reported(size_t entry = 0) const;

  bool bug_found(size_t entry = 0) const;
  BugKind kind(size_t entry = 0) const;
  uint32_t cex_cycles(size_t entry = 0) const;
  // kNone when the entry found a bug or every job completed; otherwise the
  // reason code of the entry's first inconclusive job.
  UnknownReason unknown_reason(size_t entry = 0) const;
  // Jobs whose verdict is still unknown after retries (0 = fully decided).
  size_t num_unknown() const;
  // The reported run's AqedResult / instrumented transition system.
  const AqedResult& aqed(size_t entry = 0) const;
  const ir::TransitionSystem& ts(size_t entry = 0) const;

  // Accumulated solver effort across the entry's jobs (legacy
  // CheckAccelerator reported the accumulated totals of its sequential
  // property runs).
  double solver_seconds(size_t entry = 0) const;
  uint64_t conflicts(size_t entry = 0) const;

  // Handle-taking overloads: the preferred accessors when the Enqueue()
  // handle is in hand (benches, tests, campaigns iterate their handles
  // instead of re-deriving entry indices).
  const JobResult* FirstBug(const JobHandle& h) const {
    return FirstBug(h.index());
  }
  const JobResult& Reported(const JobHandle& h) const {
    return Reported(h.index());
  }
  bool bug_found(const JobHandle& h) const { return bug_found(h.index()); }
  BugKind kind(const JobHandle& h) const { return kind(h.index()); }
  uint32_t cex_cycles(const JobHandle& h) const {
    return cex_cycles(h.index());
  }
  UnknownReason unknown_reason(const JobHandle& h) const {
    return unknown_reason(h.index());
  }
  const AqedResult& aqed(const JobHandle& h) const { return aqed(h.index()); }
  const ir::TransitionSystem& ts(const JobHandle& h) const {
    return ts(h.index());
  }
  double solver_seconds(const JobHandle& h) const {
    return solver_seconds(h.index());
  }
  uint64_t conflicts(const JobHandle& h) const {
    return conflicts(h.index());
  }
};

// Preferred top-level entry point: checks each enabled property group (FC,
// RB, SAC) on a *separately instrumented copy* of the design, so each BMC
// run only carries the monitor it needs — a cone-of-influence reduction
// that makes the (dominant) UNSAT refutations far cheaper. The property
// jobs are submitted to a verification session as one entry; `session`
// controls parallelism and cancellation (the default runs them sequentially
// with first-bug-wins, matching the legacy behavior).
SessionResult CheckAccelerator(const AcceleratorBuilder& build,
                               const AqedOptions& options,
                               const SessionOptions& session = {});

}  // namespace aqed::core
