// Top-level A-QED checker facade.
//
// Given an accelerator transition system and its interface description, the
// checker instruments the requested universal properties (FC always unless
// disabled; RB and SAC optionally), runs BMC, and decodes the outcome into a
// per-property verdict with a validated minimum-length counterexample.
//
// This is the A-QED analogue of "write the aqed_top C++ harness and hand the
// result to the model checker" in the paper's HLS flow.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "aqed/fc_instrument.h"
#include "aqed/interface.h"
#include "aqed/rb_instrument.h"
#include "aqed/sac_instrument.h"
#include "bmc/engine.h"
#include "ir/transition_system.h"

namespace aqed::core {

// Which universal property a counterexample violated.
enum class BugKind {
  kNone,
  kFunctionalConsistency,  // dup output differs from orig output
  kEarlyOutput,            // output produced before its input (FC footnote 1)
  kResponseBound,          // output did not arrive within tau (RB part 2)
  kInputStarvation,        // rdin stayed low beyond the bound (RB part 1)
  kSingleActionCorrectness,
};

const char* BugKindName(BugKind kind);

struct AqedOptions {
  bool check_fc = true;
  FcOptions fc;
  std::optional<RbOptions> rb;        // engaged when set
  std::optional<SpecFn> sac_spec;     // engaged when set
  SacOptions sac;
  bmc::BmcOptions bmc;
  // Per-property bound overrides for CheckAccelerator (0 = bmc.max_bound).
  // RB counterexamples sit `tau` cycles deeper than FC ones, so they
  // typically need a larger bound.
  uint32_t fc_bound = 0;
  uint32_t rb_bound = 0;
  uint32_t sac_bound = 0;
};

struct AqedResult {
  bool bug_found = false;
  BugKind kind = BugKind::kNone;
  bmc::BmcResult bmc;

  // Counterexample length in clock cycles (0 when no bug).
  uint32_t cex_cycles() const {
    return bug_found ? bmc.trace.length() : 0;
  }
};

// Instruments `ts` in place and runs BMC over all generated properties in
// one combined model. `ts` must already contain the accelerator; the
// monitors are added on top (pre-silicon only — the A-QED module never
// ships with the design).
AqedResult RunAqed(ir::TransitionSystem& ts, const AcceleratorInterface& acc,
                   const AqedOptions& options);

// Builds the accelerator into the given (fresh) transition system and
// returns its interface.
using AcceleratorBuilder =
    std::function<AcceleratorInterface(ir::TransitionSystem&)>;

// Preferred top-level entry point: checks each enabled property group (FC,
// then RB, then SAC) on a *separately instrumented copy* of the design, so
// each BMC run only carries the monitor it needs — a cone-of-influence
// reduction that makes the (dominant) UNSAT refutations far cheaper.
// Returns the first bug found, or the clean result of the last run.
// `out_ts`, if given, receives the transition system of the reported run
// (for trace formatting).
AqedResult CheckAccelerator(
    const AcceleratorBuilder& build, const AqedOptions& options,
    std::unique_ptr<ir::TransitionSystem>* out_ts = nullptr);

}  // namespace aqed::core
