#include "aqed/rb_instrument.h"

#include "aqed/monitor_util.h"
#include "support/status.h"

namespace aqed::core {

using ir::Context;
using ir::NodeRef;
using ir::Sort;

RbInstrumentation InstrumentRb(ir::TransitionSystem& ts,
                               const AcceleratorInterface& acc,
                               const RbOptions& options) {
  const Status valid = acc.Validate(ts);
  AQED_CHECK(valid.ok(), "InstrumentRb: " + valid.message());
  Context& ctx = ts.ctx();
  RbInstrumentation rb;

  const NodeRef capture_in = ctx.And(acc.in_valid, acc.in_ready);
  const NodeRef capture_out = ctx.And(acc.out_valid, acc.host_ready);
  const NodeRef qualifier = options.progress_qualifier != ir::kNullNode
                                ? options.progress_qualifier
                                : ctx.True();

  // --- part 2: output must arrive within tau host-ready cycles -----------
  rb.is_tracked = ts.AddInput(options.label + ".is_tracked", Sort::BitVec(1));
  const NodeRef tracked_labeled =
      Reg(ts, options.label + ".tracked_labeled", 1, 0);
  const NodeRef tracked_batch =
      Reg(ts, options.label + ".TRACKED_BATCH", kCounterWidth, 0);
  const NodeRef batch_ct =
      Reg(ts, options.label + ".batch_ct", kCounterWidth, 0);
  const NodeRef out_batch_ct =
      Reg(ts, options.label + ".out_batch_ct", kCounterWidth, 0);
  const NodeRef cnt_rdh = Reg(ts, options.label + ".cnt_rdh", kCounterWidth, 0);
  const NodeRef cnt_in = Reg(ts, options.label + ".cnt_in", kCounterWidth, 0);

  const NodeRef label_tracked = ctx.And(
      ctx.And(rb.is_tracked, capture_in), ctx.Not(tracked_labeled));
  LatchWhen(ts, tracked_labeled, label_tracked, ctx.True());
  LatchWhen(ts, tracked_batch, label_tracked, batch_ct);
  CountWhen(ts, batch_ct, capture_in);
  CountWhen(ts, out_batch_ct, capture_out);
  // Captured inputs observed *after* the tracked input (the label cycle
  // itself counts the capture, hence the +1 below).
  CountWhen(ts, cnt_in, ctx.And(tracked_labeled, capture_in));
  // Host-ready cycles counted toward tau. The clock only runs once the
  // accelerator has received the in_min inputs it needs before it can
  // produce anything (e.g. a bank that must fill) — the paper's in_min
  // customization (Sec. IV.C).
  const NodeRef have_in_min =
      ctx.Uge(ctx.Add(cnt_in, ctx.Const(kCounterWidth, 1)),
              ctx.Const(kCounterWidth, options.in_min));
  CountWhen(ts, cnt_rdh,
            ctx.And(ctx.And(tracked_labeled, acc.host_ready),
                    ctx.And(qualifier, have_in_min)));

  // The tracked input's output batch has been produced once out_batch_ct
  // passes its batch index.
  const NodeRef rdy_out = ctx.Ugt(out_batch_ct, tracked_batch);

  const NodeRef tau_reached =
      ctx.Uge(cnt_rdh, ctx.Const(kCounterWidth, options.tau));
  const NodeRef rb_violation =
      ctx.And(ctx.And(tracked_labeled, ctx.Not(rdy_out)),
              ctx.And(tau_reached, have_in_min));
  rb.rb_bad_index = ts.AddBad(rb_violation, options.label);
  rb.tracked_labeled = tracked_labeled;
  rb.cnt_rdh = cnt_rdh;
  rb.cnt_in = cnt_in;
  rb.rdy_out = rdy_out;

  // --- part 1: rdin must re-assert within rdin_bound cycles ---------------
  if (options.rdin_bound > 0) {
    const NodeRef low_streak =
        Reg(ts, options.label + ".rdin_low_streak", kCounterWidth, 0);
    // Only host-ready (and qualifier-enabled) cycles count: a finite-buffer
    // accelerator whose host refuses to accept outputs is entitled to hold
    // rdin low — it is starvation only if the host keeps giving it the
    // chance to drain and rdin still never returns.
    const NodeRef counting = ctx.And(acc.host_ready, qualifier);
    ts.SetNext(
        low_streak,
        ctx.Ite(acc.in_ready, ctx.Const(kCounterWidth, 0),
                ctx.Ite(counting,
                        ctx.Add(low_streak, ctx.Const(kCounterWidth, 1)),
                        low_streak)));
    const NodeRef starved = ctx.Uge(
        low_streak, ctx.Const(kCounterWidth, options.rdin_bound));
    rb.starve_bad_index = ts.AddBad(starved, options.label + "_starvation");
    rb.has_starve_bad = true;
  }
  return rb;
}

}  // namespace aqed::core
