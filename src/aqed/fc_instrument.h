// Functional-Consistency (FC) instrumentation — the A-QED module of the
// paper's Fig. 4, expressed as a transformation on the accelerator's
// transition system.
//
// The monitor adds free symbolic control inputs (is_orig / is_dup and, for
// multi-element batches, orig_idx / dup_idx) that let the BMC engine choose
// which captured input is the "original" and which later captured input with
// *identical action/data* (and identical shared context) is the "duplicate".
// It records the original's output when its transaction completes, and when
// the duplicate's transaction completes it checks both outputs match:
//
//     dup_done -> fc_check            (paper Sec. IV.B)
//
// A violation is registered as a bad predicate for the BMC engine. Per the
// paper's footnote 1, FC is strengthened with a second bad predicate that
// fires if the accelerator emits an output batch before having captured the
// corresponding input batch.
#pragma once

#include <string>

#include "aqed/interface.h"
#include "ir/transition_system.h"

namespace aqed::core {

struct FcOptions {
  // Label of the generated bad predicates (prefixed).
  std::string label = "aqed_fc";
  // Also add the strengthened "no output before input" check (footnote 1).
  bool check_early_output = true;
};

struct FcInstrumentation {
  uint32_t fc_bad_index = 0;             // dup_done && !fc_check
  uint32_t early_output_bad_index = 0;   // valid if has_early_output_bad
  bool has_early_output_bad = false;

  // Free monitor control inputs (useful for trace inspection).
  ir::NodeRef is_orig = ir::kNullNode;
  ir::NodeRef is_dup = ir::kNullNode;
  ir::NodeRef orig_idx = ir::kNullNode;  // element index within batch
  ir::NodeRef dup_idx = ir::kNullNode;

  // Monitor status signals.
  ir::NodeRef orig_labeled = ir::kNullNode;
  ir::NodeRef dup_labeled = ir::kNullNode;
  ir::NodeRef dup_done_event = ir::kNullNode;  // dup output captured now
  ir::NodeRef fc_check = ir::kNullNode;        // outputs match (at event)
};

// Adds the FC monitor to `ts`. `acc` must Validate() against `ts`.
FcInstrumentation InstrumentFc(ir::TransitionSystem& ts,
                               const AcceleratorInterface& acc,
                               const FcOptions& options = {});

}  // namespace aqed::core
