// The accelerator interface model targeted by A-QED (paper Sec. II/III).
//
// An accelerator is a transition system exchanging data with its host
// through a ready-valid handshake:
//   * an input is *captured* in cycles where `in_valid && in_ready`
//     (the host presents a valid action/data and the accelerator is ready,
//     i.e. a(in) != a_nop and rdin(s) holds);
//   * an output is *captured* in cycles where `out_valid && host_ready`
//     (the accelerator produces a valid output, F(s) != o_nop, and the host
//     is ready to accept it, rdh).
//
// Inputs and outputs move in *batches* of `batch_size()` elements per
// handshake (Sec. IV.B: single-input batches are the common case,
// multi-input batches model accelerators that accept several independent
// operands per transaction and may process them in parallel). Each element
// consists of one or more words; `shared_context` lists signals that are
// common to a whole batch and must match between the original and duplicate
// transactions (the paper's AES common-key customization).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/transition_system.h"
#include "support/status.h"

namespace aqed::core {

struct AcceleratorInterface {
  // Handshake (all 1-bit signals of the design's transition system).
  ir::NodeRef in_valid = ir::kNullNode;    // host: a(in) != a_nop
  ir::NodeRef in_ready = ir::kNullNode;    // accelerator: rdin(s)
  ir::NodeRef host_ready = ir::kNullNode;  // host: rdh(in)
  ir::NodeRef out_valid = ir::kNullNode;   // accelerator: F(s) != o_nop

  // data_elems[e][w]: word w of input element e (captured together).
  std::vector<std::vector<ir::NodeRef>> data_elems;
  // out_elems[e][w]: word w of output element e. Outputs are produced in
  // batch order (non-interfering, in-order completion).
  std::vector<std::vector<ir::NodeRef>> out_elems;

  // Batch-common signals (e.g. a shared encryption key) that the FC monitor
  // must hold equal between the original and the duplicate transaction.
  std::vector<ir::NodeRef> shared_context;

  // Optional design signal (e.g. a host clock-enable) gating all progress:
  // the RB monitor does not count disabled cycles toward the response bound
  // (design-specific A-QED customization, Sec. V.A).
  ir::NodeRef progress_qualifier = ir::kNullNode;

  uint32_t batch_size() const {
    return static_cast<uint32_t>(data_elems.size());
  }

  // Checks structural sanity against `ts`: handshake signals are 1-bit,
  // batch shapes are consistent and non-empty.
  Status Validate(const ir::TransitionSystem& ts) const;
};

// Width of the monitor's transaction counters. Wide enough that they cannot
// wrap within any realistic BMC bound (bounds beyond 255 frames are far
// outside BMC reach for these designs), so counter equality checks are
// exact; narrow enough to keep the per-frame CNF small.
inline constexpr uint32_t kCounterWidth = 8;

}  // namespace aqed::core
