// Structurally-hashed Tseitin gate construction over a SAT solver.
//
// This is the AIG-like layer between the word-level bit-blaster and CNF:
// every gate is constant-folded, normalized (commutative operand ordering,
// double-negation removal), and hash-consed, so identical subcircuits across
// BMC frames share clauses.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sat/solver.h"
#include "sat/types.h"

namespace aqed::bitblast {

class GateBuilder {
 public:
  explicit GateBuilder(sat::Solver& solver);

  sat::Solver& solver() { return solver_; }

  sat::Lit True() const { return true_lit_; }
  sat::Lit False() const { return ~true_lit_; }
  sat::Lit Constant(bool value) const { return value ? True() : False(); }
  bool IsTrue(sat::Lit lit) const { return lit == True(); }
  bool IsFalse(sat::Lit lit) const { return lit == False(); }
  bool IsConstant(sat::Lit lit) const { return IsTrue(lit) || IsFalse(lit); }

  // Fresh unconstrained literal (symbolic input bit).
  sat::Lit Fresh();

  sat::Lit And(sat::Lit a, sat::Lit b);
  sat::Lit Or(sat::Lit a, sat::Lit b) { return ~And(~a, ~b); }
  sat::Lit Xor(sat::Lit a, sat::Lit b);
  sat::Lit Xnor(sat::Lit a, sat::Lit b) { return ~Xor(a, b); }
  sat::Lit Implies(sat::Lit a, sat::Lit b) { return ~And(a, ~b); }
  // sel ? then_lit : else_lit
  sat::Lit Mux(sat::Lit sel, sat::Lit then_lit, sat::Lit else_lit);

  sat::Lit AndAll(std::span<const sat::Lit> lits);
  sat::Lit OrAll(std::span<const sat::Lit> lits);

  // sum / carry of a full adder (shares the majority/parity structure).
  void FullAdder(sat::Lit a, sat::Lit b, sat::Lit cin, sat::Lit& sum,
                 sat::Lit& carry);

  // Asserts a literal as a unit clause.
  void Assert(sat::Lit lit);

  uint64_t num_gates() const { return num_gates_; }

 private:
  struct KeyHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& key) const {
      return std::hash<uint64_t>{}(key.first * 0x9e3779b97f4a7c15ULL ^
                                   key.second);
    }
  };

  sat::Solver& solver_;
  sat::Lit true_lit_;
  // (tag | a.index, b.index) -> output literal. tag bit 63: xor vs and.
  std::unordered_map<std::pair<uint64_t, uint64_t>, sat::Lit, KeyHash> cache_;
  uint64_t num_gates_ = 0;
};

}  // namespace aqed::bitblast
