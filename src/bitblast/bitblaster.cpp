#include "bitblast/bitblaster.h"

#include <algorithm>

#include "support/bits.h"
#include "support/status.h"

namespace aqed::bitblast {

using sat::Lit;

Bits BitBlaster::Constant(uint32_t width, uint64_t value) {
  Bits bits(width);
  for (uint32_t i = 0; i < width; ++i) {
    bits[i] = gates_.Constant(GetBit(value, i));
  }
  return bits;
}

Bits BitBlaster::Fresh(uint32_t width) {
  Bits bits(width);
  for (auto& bit : bits) bit = gates_.Fresh();
  return bits;
}

ArrayBits BitBlaster::ConstantArray(uint32_t index_width, uint32_t elem_width,
                                    uint64_t value) {
  ArrayBits array;
  array.elems.assign(uint64_t{1} << index_width, Constant(elem_width, value));
  return array;
}

ArrayBits BitBlaster::FreshArray(uint32_t index_width, uint32_t elem_width) {
  ArrayBits array;
  array.elems.resize(uint64_t{1} << index_width);
  for (auto& elem : array.elems) elem = Fresh(elem_width);
  return array;
}

Bits BitBlaster::Not(const Bits& a) {
  Bits out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = ~a[i];
  return out;
}

Bits BitBlaster::And(const Bits& a, const Bits& b) {
  Bits out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = gates_.And(a[i], b[i]);
  return out;
}

Bits BitBlaster::Or(const Bits& a, const Bits& b) {
  Bits out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = gates_.Or(a[i], b[i]);
  return out;
}

Bits BitBlaster::Xor(const Bits& a, const Bits& b) {
  Bits out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = gates_.Xor(a[i], b[i]);
  return out;
}

Bits BitBlaster::Add(const Bits& a, const Bits& b) {
  Bits out(a.size());
  Lit carry = gates_.False();
  for (size_t i = 0; i < a.size(); ++i) {
    gates_.FullAdder(a[i], b[i], carry, out[i], carry);
  }
  return out;
}

Bits BitBlaster::Sub(const Bits& a, const Bits& b) {
  // a - b == a + ~b + 1.
  Bits out(a.size());
  Lit carry = gates_.True();
  for (size_t i = 0; i < a.size(); ++i) {
    gates_.FullAdder(a[i], ~b[i], carry, out[i], carry);
  }
  return out;
}

Bits BitBlaster::Neg(const Bits& a) {
  return Sub(Constant(static_cast<uint32_t>(a.size()), 0), a);
}

Bits BitBlaster::Mul(const Bits& a, const Bits& b) {
  const uint32_t width = static_cast<uint32_t>(a.size());
  Bits acc = Constant(width, 0);
  for (uint32_t i = 0; i < width; ++i) {
    if (gates_.IsFalse(b[i])) continue;
    // acc += (a << i) gated by b[i]; bits above `width` are truncated.
    Bits partial(width, gates_.False());
    for (uint32_t j = i; j < width; ++j) {
      partial[j] = gates_.And(a[j - i], b[i]);
    }
    acc = Add(acc, partial);
  }
  return acc;
}

void BitBlaster::Divide(const Bits& a, const Bits& b, Bits& quotient,
                        Bits& remainder) {
  const uint32_t width = static_cast<uint32_t>(a.size());
  // Restoring long division with a (width+1)-bit partial remainder.
  const Bits b_ext = Zext(b, width + 1);
  Bits rem = Constant(width + 1, 0);
  Bits quo(width, gates_.False());
  for (uint32_t i = width; i-- > 0;) {
    // rem = (rem << 1) | a[i]
    rem.insert(rem.begin(), a[i]);
    rem.pop_back();
    const Lit geq = Ule(b_ext, rem);
    quo[i] = geq;
    rem = Ite(geq, Sub(rem, b_ext), rem);
  }
  Bits rem_trunc = Extract(rem, width - 1, 0);
  // Division by zero: quotient all-ones, remainder the dividend.
  const Lit divisor_zero = Eq(b, Constant(width, 0));
  quotient = Ite(divisor_zero, Constant(width, WidthMask(width)), quo);
  remainder = Ite(divisor_zero, a, rem_trunc);
}

Lit BitBlaster::Eq(const Bits& a, const Bits& b) {
  Lit acc = gates_.True();
  for (size_t i = 0; i < a.size(); ++i) {
    acc = gates_.And(acc, gates_.Xnor(a[i], b[i]));
  }
  return acc;
}

Lit BitBlaster::Ult(const Bits& a, const Bits& b) {
  // Ripple from LSB: lt_i = (~a_i & b_i) | (a_i == b_i) & lt_{i-1}.
  Lit lt = gates_.False();
  for (size_t i = 0; i < a.size(); ++i) {
    lt = gates_.Or(gates_.And(~a[i], b[i]),
                   gates_.And(gates_.Xnor(a[i], b[i]), lt));
  }
  return lt;
}

Lit BitBlaster::Ule(const Bits& a, const Bits& b) { return ~Ult(b, a); }

Lit BitBlaster::Slt(const Bits& a, const Bits& b) {
  // Signed compare == unsigned compare with inverted sign bits.
  Bits a_flip = a;
  Bits b_flip = b;
  a_flip.back() = ~a_flip.back();
  b_flip.back() = ~b_flip.back();
  return Ult(a_flip, b_flip);
}

Lit BitBlaster::Sle(const Bits& a, const Bits& b) { return ~Slt(b, a); }

Bits BitBlaster::ShiftConst(const Bits& a, int64_t amount, Lit fill) {
  const int64_t width = static_cast<int64_t>(a.size());
  Bits out(a.size(), fill);
  for (int64_t j = 0; j < width; ++j) {
    const int64_t src = j - amount;  // left shift by `amount`
    if (src >= 0 && src < width) out[j] = a[src];
  }
  return out;
}

Bits BitBlaster::BarrelShift(const Bits& a, const Bits& amount, bool left,
                             Lit fill) {
  // Stages cover amounts < 128; any width <= 64 saturates to all-fill within
  // those stages. Higher amount bits force all-fill directly.
  const uint32_t stages =
      std::min<uint32_t>(static_cast<uint32_t>(amount.size()), 7);
  Bits result = a;
  for (uint32_t k = 0; k < stages; ++k) {
    const int64_t step = int64_t{1} << k;
    Bits shifted = ShiftConst(result, left ? step : -step, fill);
    result = Ite(amount[k], shifted, result);
  }
  Lit oversize = gates_.False();
  for (size_t k = stages; k < amount.size(); ++k) {
    oversize = gates_.Or(oversize, amount[k]);
  }
  if (!gates_.IsFalse(oversize)) {
    result = Ite(oversize, Bits(a.size(), fill), result);
  }
  return result;
}

Bits BitBlaster::Shl(const Bits& a, const Bits& amount) {
  return BarrelShift(a, amount, /*left=*/true, gates_.False());
}

Bits BitBlaster::Lshr(const Bits& a, const Bits& amount) {
  return BarrelShift(a, amount, /*left=*/false, gates_.False());
}

Bits BitBlaster::Ashr(const Bits& a, const Bits& amount) {
  return BarrelShift(a, amount, /*left=*/false, a.back());
}

Bits BitBlaster::Ite(Lit cond, const Bits& then_bits, const Bits& else_bits) {
  Bits out(then_bits.size());
  for (size_t i = 0; i < then_bits.size(); ++i) {
    out[i] = gates_.Mux(cond, then_bits[i], else_bits[i]);
  }
  return out;
}

Bits BitBlaster::Concat(const Bits& high, const Bits& low) {
  Bits out = low;
  out.insert(out.end(), high.begin(), high.end());
  return out;
}

Bits BitBlaster::Extract(const Bits& a, uint32_t hi, uint32_t lo) {
  return Bits(a.begin() + lo, a.begin() + hi + 1);
}

Bits BitBlaster::Zext(const Bits& a, uint32_t new_width) {
  Bits out = a;
  out.resize(new_width, gates_.False());
  return out;
}

Bits BitBlaster::Sext(const Bits& a, uint32_t new_width) {
  Bits out = a;
  out.resize(new_width, a.back());
  return out;
}

Lit BitBlaster::IndexEquals(const Bits& index, uint64_t value) {
  Lit acc = gates_.True();
  for (size_t i = 0; i < index.size(); ++i) {
    acc = gates_.And(acc, GetBit(value, static_cast<uint32_t>(i))
                              ? index[i]
                              : ~index[i]);
  }
  return acc;
}

Bits BitBlaster::Read(const ArrayBits& array, const Bits& index) {
  AQED_CHECK(!array.elems.empty(), "read from empty array");
  Bits result = array.elems[0];
  for (uint64_t i = 1; i < array.elems.size(); ++i) {
    result = Ite(IndexEquals(index, i), array.elems[i], result);
  }
  return result;
}

ArrayBits BitBlaster::Write(const ArrayBits& array, const Bits& index,
                            const Bits& value) {
  ArrayBits out;
  out.elems.resize(array.elems.size());
  for (uint64_t i = 0; i < array.elems.size(); ++i) {
    out.elems[i] = Ite(IndexEquals(index, i), value, array.elems[i]);
  }
  return out;
}

ArrayBits BitBlaster::IteArray(Lit cond, const ArrayBits& then_val,
                               const ArrayBits& else_val) {
  ArrayBits out;
  out.elems.resize(then_val.elems.size());
  for (uint64_t i = 0; i < then_val.elems.size(); ++i) {
    out.elems[i] = Ite(cond, then_val.elems[i], else_val.elems[i]);
  }
  return out;
}

Bits BitBlaster::EvalScalarOp(ir::Op op, uint32_t out_width,
                              std::span<const Bits> operands, uint32_t aux0,
                              uint32_t aux1) {
  using ir::Op;
  switch (op) {
    case Op::kNot:
      return Not(operands[0]);
    case Op::kAnd:
      return And(operands[0], operands[1]);
    case Op::kOr:
      return Or(operands[0], operands[1]);
    case Op::kXor:
      return Xor(operands[0], operands[1]);
    case Op::kNeg:
      return Neg(operands[0]);
    case Op::kAdd:
      return Add(operands[0], operands[1]);
    case Op::kSub:
      return Sub(operands[0], operands[1]);
    case Op::kMul:
      return Mul(operands[0], operands[1]);
    case Op::kUdiv: {
      Bits quotient, remainder;
      Divide(operands[0], operands[1], quotient, remainder);
      return quotient;
    }
    case Op::kUrem: {
      Bits quotient, remainder;
      Divide(operands[0], operands[1], quotient, remainder);
      return remainder;
    }
    case Op::kEq:
      return {Eq(operands[0], operands[1])};
    case Op::kNe:
      return {~Eq(operands[0], operands[1])};
    case Op::kUlt:
      return {Ult(operands[0], operands[1])};
    case Op::kUle:
      return {Ule(operands[0], operands[1])};
    case Op::kSlt:
      return {Slt(operands[0], operands[1])};
    case Op::kSle:
      return {Sle(operands[0], operands[1])};
    case Op::kShl:
      return Shl(operands[0], operands[1]);
    case Op::kLshr:
      return Lshr(operands[0], operands[1]);
    case Op::kAshr:
      return Ashr(operands[0], operands[1]);
    case Op::kIte:
      return Ite(operands[0][0], operands[1], operands[2]);
    case Op::kConcat:
      return Concat(operands[0], operands[1]);
    case Op::kExtract:
      return Extract(operands[0], aux0, aux1);
    case Op::kZext:
      return Zext(operands[0], out_width);
    case Op::kSext:
      return Sext(operands[0], out_width);
    default:
      AQED_CHECK(false, "EvalScalarOp: unsupported op");
      return {};
  }
}

}  // namespace aqed::bitblast
