// Word-level operation encodings over literal vectors (LSB-first).
//
// The BitBlaster is pure combinational plumbing: given the literal vectors of
// a node's operands, it produces the literal vector of the result through the
// GateBuilder. The BMC unroller owns the mapping from (node, frame) to
// literal vectors and calls EvalOp per node.
//
// Encodings: ripple-carry add/sub, shift-and-add multiplier, restoring
// divider, barrel shifters with oversize saturation, linear-scan array
// read/write muxing. Exhaustively tested against ir::EvalScalarOp at small
// widths (tests/bitblast_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitblast/gate_builder.h"
#include "ir/node.h"

namespace aqed::bitblast {

// Bit vector of literals, least-significant bit first.
using Bits = std::vector<sat::Lit>;

// Blasted array value: one literal vector per element.
struct ArrayBits {
  std::vector<Bits> elems;
};

class BitBlaster {
 public:
  explicit BitBlaster(GateBuilder& gates) : gates_(gates) {}

  GateBuilder& gates() { return gates_; }

  // --- leaves ------------------------------------------------------------
  Bits Constant(uint32_t width, uint64_t value);
  Bits Fresh(uint32_t width);
  ArrayBits ConstantArray(uint32_t index_width, uint32_t elem_width,
                          uint64_t value);
  ArrayBits FreshArray(uint32_t index_width, uint32_t elem_width);

  // --- scalar operations -------------------------------------------------
  Bits Not(const Bits& a);
  Bits And(const Bits& a, const Bits& b);
  Bits Or(const Bits& a, const Bits& b);
  Bits Xor(const Bits& a, const Bits& b);
  Bits Neg(const Bits& a);
  Bits Add(const Bits& a, const Bits& b);
  Bits Sub(const Bits& a, const Bits& b);
  Bits Mul(const Bits& a, const Bits& b);
  // Computes quotient and remainder together (SMT-LIB div-by-zero rules).
  void Divide(const Bits& a, const Bits& b, Bits& quotient, Bits& remainder);
  sat::Lit Eq(const Bits& a, const Bits& b);
  sat::Lit Ult(const Bits& a, const Bits& b);
  sat::Lit Ule(const Bits& a, const Bits& b);
  sat::Lit Slt(const Bits& a, const Bits& b);
  sat::Lit Sle(const Bits& a, const Bits& b);
  Bits Shl(const Bits& a, const Bits& amount);
  Bits Lshr(const Bits& a, const Bits& amount);
  Bits Ashr(const Bits& a, const Bits& amount);
  Bits Ite(sat::Lit cond, const Bits& then_bits, const Bits& else_bits);
  Bits Concat(const Bits& high, const Bits& low);
  Bits Extract(const Bits& a, uint32_t hi, uint32_t lo);
  Bits Zext(const Bits& a, uint32_t new_width);
  Bits Sext(const Bits& a, uint32_t new_width);

  // --- array operations -----------------------------------------------------
  Bits Read(const ArrayBits& array, const Bits& index);
  ArrayBits Write(const ArrayBits& array, const Bits& index, const Bits& value);
  ArrayBits IteArray(sat::Lit cond, const ArrayBits& then_val,
                     const ArrayBits& else_val);

  // Dispatches a scalar IR operation given operand bit vectors.
  Bits EvalScalarOp(ir::Op op, uint32_t out_width,
                    std::span<const Bits> operands, uint32_t aux0,
                    uint32_t aux1);

 private:
  // Literal that is true iff `index` equals constant `value`.
  sat::Lit IndexEquals(const Bits& index, uint64_t value);
  // Shift by a constant amount with the given fill bit.
  Bits ShiftConst(const Bits& a, int64_t amount, sat::Lit fill);
  Bits BarrelShift(const Bits& a, const Bits& amount, bool left,
                   sat::Lit fill);

  GateBuilder& gates_;
};

}  // namespace aqed::bitblast
