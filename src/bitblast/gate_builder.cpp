#include "bitblast/gate_builder.h"

#include <algorithm>

#include "support/status.h"

namespace aqed::bitblast {

using sat::Lit;

GateBuilder::GateBuilder(sat::Solver& solver) : solver_(solver) {
  true_lit_ = Lit(solver_.NewVar(), /*negated=*/false);
  solver_.AddClause({true_lit_});
}

Lit GateBuilder::Fresh() { return Lit(solver_.NewVar(), false); }

Lit GateBuilder::And(Lit a, Lit b) {
  // Constant folding and trivial cases.
  if (IsFalse(a) || IsFalse(b) || a == ~b) return False();
  if (IsTrue(a)) return b;
  if (IsTrue(b) || a == b) return a;
  // Normalize commutative operand order.
  if (a.index() > b.index()) std::swap(a, b);
  const std::pair<uint64_t, uint64_t> key{a.index(), b.index()};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Lit out = Fresh();
  solver_.AddClause({~out, a});
  solver_.AddClause({~out, b});
  solver_.AddClause({out, ~a, ~b});
  cache_.emplace(key, out);
  ++num_gates_;
  return out;
}

Lit GateBuilder::Xor(Lit a, Lit b) {
  if (IsConstant(a)) return IsTrue(a) ? ~b : b;
  if (IsConstant(b)) return IsTrue(b) ? ~a : a;
  if (a == b) return False();
  if (a == ~b) return True();
  // Normalize: strip output polarity into the sign of the result so
  // xor(a,b), xor(~a,b), ... share one gate.
  bool flip = false;
  if (a.negated()) {
    a = ~a;
    flip = !flip;
  }
  if (b.negated()) {
    b = ~b;
    flip = !flip;
  }
  if (a.index() > b.index()) std::swap(a, b);
  const std::pair<uint64_t, uint64_t> key{(uint64_t{1} << 63) | a.index(),
                                          b.index()};
  Lit out;
  if (auto it = cache_.find(key); it != cache_.end()) {
    out = it->second;
  } else {
    out = Fresh();
    solver_.AddClause({~out, a, b});
    solver_.AddClause({~out, ~a, ~b});
    solver_.AddClause({out, ~a, b});
    solver_.AddClause({out, a, ~b});
    cache_.emplace(key, out);
    ++num_gates_;
  }
  return flip ? ~out : out;
}

Lit GateBuilder::Mux(Lit sel, Lit then_lit, Lit else_lit) {
  if (IsConstant(sel)) return IsTrue(sel) ? then_lit : else_lit;
  if (then_lit == else_lit) return then_lit;
  if (then_lit == ~else_lit) return Xor(sel, else_lit);
  if (IsTrue(then_lit)) return Or(sel, else_lit);
  if (IsFalse(then_lit)) return And(~sel, else_lit);
  if (IsTrue(else_lit)) return Or(~sel, then_lit);
  if (IsFalse(else_lit)) return And(sel, then_lit);
  if (sel == then_lit) return Or(sel, else_lit);        // s?s:e == s|e
  if (sel == ~then_lit) return And(~sel, else_lit);     // s?~s:e == ~s&e
  if (sel == else_lit) return And(sel, then_lit);       // s?t:s == s&t
  if (sel == ~else_lit) return Or(~sel, then_lit);      // s?t:~s == ~s|t
  // Normalize: selector always positive.
  if (sel.negated()) {
    sel = ~sel;
    std::swap(then_lit, else_lit);
  }
  const std::pair<uint64_t, uint64_t> key{
      (uint64_t{1} << 62) | sel.index(),
      (static_cast<uint64_t>(then_lit.index()) << 32) | else_lit.index()};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  // Direct 6-clause encoding (with the two redundant clauses that give the
  // solver arc consistency through the mux) — one variable instead of the
  // three an AND/OR decomposition would allocate. Mux trees dominate the
  // accelerator designs, so this matters.
  const Lit out = Fresh();
  solver_.AddClause({~sel, ~then_lit, out});
  solver_.AddClause({~sel, then_lit, ~out});
  solver_.AddClause({sel, ~else_lit, out});
  solver_.AddClause({sel, else_lit, ~out});
  solver_.AddClause({~then_lit, ~else_lit, out});
  solver_.AddClause({then_lit, else_lit, ~out});
  cache_.emplace(key, out);
  ++num_gates_;
  return out;
}

Lit GateBuilder::AndAll(std::span<const Lit> lits) {
  Lit acc = True();
  for (Lit lit : lits) acc = And(acc, lit);
  return acc;
}

Lit GateBuilder::OrAll(std::span<const Lit> lits) {
  Lit acc = False();
  for (Lit lit : lits) acc = Or(acc, lit);
  return acc;
}

void GateBuilder::FullAdder(Lit a, Lit b, Lit cin, Lit& sum, Lit& carry) {
  sum = Xor(Xor(a, b), cin);
  carry = Or(And(a, b), And(cin, Xor(a, b)));
}

void GateBuilder::Assert(Lit lit) {
  AQED_CHECK(!IsFalse(lit), "asserting constant false");
  if (IsTrue(lit)) return;
  solver_.AddClause({lit});
}

}  // namespace aqed::bitblast
