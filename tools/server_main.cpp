// aqed-server: resident verification service over a Unix-domain socket.
//
// Stays up across campaigns so the content-addressed solve cache keeps
// earning: the first client pays for a solve, every later client (or the
// same CI job re-run) gets it for free. See src/service/server.h for the
// admission ladder and DESIGN.md §12 for the architecture.
//
// Flags: --socket P            socket path (default /tmp/aqed-server.sock)
//        --executors N         shared executor pool size (default 2,
//                              0 = hardware concurrency)
//        --max-live N          global in-flight campaign bound (default 4)
//        --max-tenant-live N   per-tenant in-flight bound (default 2)
//        --max-session-jobs N  cap on one campaign's --jobs (0 = uncapped)
//        --cache P             persist the solve cache to P (CRC-JSONL,
//                              loaded at start, rewritten atomically)
//        --cache-max-entries N LRU-trim the cache to N entries at each
//                              save (0 = unbounded) — bounds a long-lived
//                              server's memory and cache file
//        --metrics-out P       arm telemetry and write a metrics JSONL
//                              snapshot on shutdown
//        --prom-out P          arm telemetry and rewrite P (atomically) with
//                              the Prometheus text exposition of the full
//                              metrics registry every --prom-period-ms
//        --prom-period-ms N    Prometheus rewrite period (default 1000)
//        --slow-request-ms N   append campaign requests taking >= N ms to
//                              the slow-request JSONL log (0 = every
//                              campaign; absent = off)
//        --slow-log P          slow-request log path (default
//                              <socket>.slow.jsonl)
//
// `aqed-client --status | --metrics | --health` introspect the running
// server over the same socket; see DESIGN.md §14 for the observability
// plane (request tracing, exposition format, slow-log schema).
#include <csignal>
#include <cstdio>

#include <unistd.h>

#include "bench_common.h"
#include "service/server.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

using namespace aqed;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  service::ServerOptions options;
  options.socket_path = flags.String("--socket", "/tmp/aqed-server.sock",
                                     "Unix-domain socket path to listen on");
  options.executors =
      flags.Uint32("--executors", options.executors,
                   "shared executor pool size (0 = hardware concurrency)");
  options.max_live = flags.Uint32("--max-live", options.max_live,
                                  "global in-flight campaign bound");
  options.max_tenant_live =
      flags.Uint32("--max-tenant-live", options.max_tenant_live,
                   "per-tenant in-flight campaign bound");
  options.max_session_jobs =
      flags.Uint32("--max-session-jobs", options.max_session_jobs,
                   "cap on one campaign's --jobs (0 = uncapped)");
  options.cache_path = flags.String(
      "--cache", {}, "persist the solve cache here (CRC-JSONL, atomic)");
  options.cache_max_entries = flags.Uint32(
      "--cache-max-entries", 0, "LRU bound on cached verdicts (0 = unbounded)");
  const std::string metrics_path = flags.String(
      "--metrics-out", {},
      "arm telemetry; write a metrics JSONL snapshot on shutdown");
  options.prom_path = flags.String(
      "--prom-out", {},
      "arm telemetry; rewrite this file with Prometheus text exposition");
  options.prom_period_ms =
      flags.Uint32("--prom-period-ms", options.prom_period_ms,
                   "Prometheus exposition rewrite period in ms");
  if (const std::string* slow_ms = flags.Value(
          "--slow-request-ms",
          "log campaigns taking >= N ms to the slow-request log (0 = all)")) {
    options.slow_request_ms = std::strtoll(slow_ms->c_str(), nullptr, 0);
  }
  options.slow_log_path = flags.String(
      "--slow-log", {},
      "slow-request JSONL path (default <socket>.slow.jsonl)");
  if (options.slow_request_ms >= 0 && options.slow_log_path.empty()) {
    options.slow_log_path = options.socket_path + ".slow.jsonl";
  }
  flags.RejectUnknown(argv[0]);

  if (!metrics_path.empty()) telemetry::SetEnabled(true);

  service::AqedServer server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "aqed-server: %s\n", started.message().c_str());
    return 1;
  }
  // The readiness line clients and CI wait for; flushed before any work.
  std::printf("aqed-server: listening on %s\n", options.socket_path.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    ::usleep(100 * 1000);
  }

  std::printf("aqed-server: shutting down (%llu requests, %llu accepted, "
              "%llu rejected, cache %zu entries, hit ratio %.2f)\n",
              static_cast<unsigned long long>(server.requests()),
              static_cast<unsigned long long>(server.accepted()),
              static_cast<unsigned long long>(server.rejected()),
              server.cache().size(), server.cache().hit_ratio());
  server.Stop();
  if (!metrics_path.empty() &&
      !telemetry::WriteMetricsJsonlFile(
          metrics_path, telemetry::MetricsRegistry::Global().Snapshot())) {
    std::fprintf(stderr, "aqed-server: cannot write metrics to %s\n",
                 metrics_path.c_str());
  }
  return 0;
}
