// aqed-server: resident verification service over a Unix-domain socket.
//
// Stays up across campaigns so the content-addressed solve cache keeps
// earning: the first client pays for a solve, every later client (or the
// same CI job re-run) gets it for free. See src/service/server.h for the
// admission ladder and DESIGN.md §12 for the architecture.
//
// Flags: --socket P            socket path (default /tmp/aqed-server.sock)
//        --executors N         shared executor pool size (default 2,
//                              0 = hardware concurrency)
//        --max-live N          global in-flight campaign bound (default 4)
//        --max-tenant-live N   per-tenant in-flight bound (default 2)
//        --max-session-jobs N  cap on one campaign's --jobs (0 = uncapped)
//        --cache P             persist the solve cache to P (CRC-JSONL,
//                              loaded at start, rewritten atomically)
//        --cache-max-entries N LRU-trim the cache to N entries at each
//                              save (0 = unbounded) — bounds a long-lived
//                              server's memory and cache file
//        --metrics-out P       arm telemetry and write a metrics JSONL
//                              snapshot on shutdown
#include <csignal>
#include <cstdio>

#include <unistd.h>

#include "bench_common.h"
#include "service/server.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

using namespace aqed;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  service::ServerOptions options;
  options.socket_path = flags.String("--socket", "/tmp/aqed-server.sock");
  options.executors = flags.Uint32("--executors", options.executors);
  options.max_live = flags.Uint32("--max-live", options.max_live);
  options.max_tenant_live =
      flags.Uint32("--max-tenant-live", options.max_tenant_live);
  options.max_session_jobs =
      flags.Uint32("--max-session-jobs", options.max_session_jobs);
  options.cache_path = flags.String("--cache");
  options.cache_max_entries = flags.Uint32("--cache-max-entries", 0);
  const std::string metrics_path = flags.String("--metrics-out");
  flags.RejectUnknown(argv[0]);

  if (!metrics_path.empty()) telemetry::SetEnabled(true);

  service::AqedServer server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "aqed-server: %s\n", started.message().c_str());
    return 1;
  }
  // The readiness line clients and CI wait for; flushed before any work.
  std::printf("aqed-server: listening on %s\n", options.socket_path.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    ::usleep(100 * 1000);
  }

  std::printf("aqed-server: shutting down (%llu accepted, %llu rejected, "
              "cache %zu entries, hit ratio %.2f)\n",
              static_cast<unsigned long long>(server.accepted()),
              static_cast<unsigned long long>(server.rejected()),
              server.cache().size(), server.cache().hit_ratio());
  server.Stop();
  if (!metrics_path.empty() &&
      !telemetry::WriteMetricsJsonlFile(
          metrics_path, telemetry::MetricsRegistry::Global().Snapshot())) {
    std::fprintf(stderr, "aqed-server: cannot write metrics to %s\n",
                 metrics_path.c_str());
  }
  return 0;
}
