// aqed-report: merges the telemetry files a verification session writes —
// a Chrome trace JSON (--trace) and/or a metrics JSONL with the
// flight-recorder time series (--metrics) — into one self-contained HTML
// report (inline CSS + SVG, opens anywhere, no network references).
//
// Usage:
//   aqed-report [--trace trace.json] [--metrics metrics.jsonl]
//               [--out report.html] [--title TEXT] [--top-spans N]
//
// At least one input is required; each side degrades gracefully when the
// other is absent (see telemetry/report.h). Exit status: 0 on success, 1 on
// an unreadable or unparsable input, 2 on bad flags.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "telemetry/report.h"

using namespace aqed;

namespace {

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buffer).str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  const std::string trace_path = flags.String(
      "--trace", {}, "Chrome trace-event JSON to summarize");
  const std::string metrics_path =
      flags.String("--metrics", {}, "metrics JSONL snapshot to summarize");
  const std::string out_path = flags.String(
      "--out", "aqed-report.html", "output HTML report path");
  telemetry::ReportData data;
  data.title = flags.String("--title", data.title, "report title");
  telemetry::ReportOptions options;
  options.top_spans = flags.Uint32("--top-spans", options.top_spans,
                                   "span names listed in the hot-spot table");
  flags.RejectUnknown(argv[0]);

  if (trace_path.empty() && metrics_path.empty()) {
    std::fprintf(stderr,
                 "%s: nothing to report: give --trace FILE and/or "
                 "--metrics FILE (plus [--out FILE] [--title TEXT] "
                 "[--top-spans N])\n",
                 argv[0]);
    return 2;
  }

  if (!trace_path.empty()) {
    const auto text = ReadFile(trace_path);
    if (!text) {
      std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                   trace_path.c_str());
      return 1;
    }
    auto spans = telemetry::ParseChromeTrace(*text);
    if (!spans) {
      std::fprintf(stderr, "%s: %s is not a Chrome trace-event JSON\n",
                   argv[0], trace_path.c_str());
      return 1;
    }
    data.spans = std::move(*spans);
  }

  if (!metrics_path.empty()) {
    const auto text = ReadFile(metrics_path);
    if (!text) {
      std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                   metrics_path.c_str());
      return 1;
    }
    auto log = telemetry::ReadMetricsLog(*text);
    if (!log) {
      std::fprintf(stderr, "%s: %s is not a metrics JSONL\n", argv[0],
                   metrics_path.c_str());
      return 1;
    }
    data.metrics = std::move(*log);
  }

  if (!telemetry::WriteHtmlReportFile(out_path, data, options)) {
    std::fprintf(stderr, "%s: cannot write %s\n", argv[0], out_path.c_str());
    return 1;
  }
  std::printf("aqed-report: %zu spans, %zu samples -> %s\n", data.spans.size(),
              data.metrics.samples.size(), out_path.c_str());
  return 0;
}
