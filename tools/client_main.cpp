// aqed-client: thin CLI for aqed-server.
//
// Single-shot:
//   aqed-client --socket /tmp/aqed-server.sock --ping
//   aqed-client --socket ... --stats
//   aqed-client --socket ... --status [--json]    operator view (tenants,
//                                                 cache, latency quantiles)
//   aqed-client --socket ... --metrics [--json]   Prometheus exposition
//   aqed-client --socket ... --health [--json]    liveness probe
//   aqed-client --socket ... --campaign --designs memctrl-fifo,alu
//               --mutants 12 --jobs 2 --tenant ci
//
// Campaigns run under a client-minted trace id (echoed back and printed as
// the "trace id:" line); grep it in the server's Chrome trace, journal,
// slow-request log, and cache file to follow one request end to end.
//
// Batch / replay / stress:
//   aqed-client --socket ... --batch requests.jsonl [--repeat N] [--clients N]
//
// --batch replays a JSONL file of raw request payloads (exactly what the
// wire carries, so a captured server stream replays verbatim); --repeat
// loops the file, --clients fans it out over N concurrent connections —
// which makes the same flag set double as the stress generator the
// admission-control tests and the CI smoke job use. A campaign response
// prints the same "classification digest: ..." line bench_fault prints, so
// digests can be diffed straight across the two flows.
//
// Exit status: 0 iff every request got an ok:true response.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/client.h"

using namespace aqed;

namespace {

// Prints one response payload; campaign responses get the digest/cache
// lines, errors go to stderr. Returns true iff the response was ok.
bool PrintResponse(const std::string& payload) {
  if (StatusOr<service::CampaignResponse> campaign =
          service::DecodeCampaignResponse(payload);
      campaign.ok() && campaign.value().ok) {
    const service::CampaignResponse& r = campaign.value();
    std::printf("%s", r.table.c_str());
    if (r.trace_id != 0) {
      std::printf("trace id: %016llx\n",
                  static_cast<unsigned long long>(r.trace_id));
    }
    std::printf("cache: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses));
    std::printf("classification digest: %016llx\n",
                static_cast<unsigned long long>(r.digest));
    std::printf("campaign wall time: %.2f s\n", r.wall_seconds);
    return true;
  }
  if (service::IsOkResponse(payload)) {
    std::printf("%s\n", payload.c_str());
    return true;
  }
  std::fprintf(stderr, "request failed: %s\n", payload.c_str());
  return false;
}

// Replays `requests` over one connection; returns the number of failures.
size_t ReplayOnce(const std::string& socket_path,
                  const std::vector<std::string>& requests, bool print) {
  service::Client client(socket_path);
  size_t failures = 0;
  for (const std::string& request : requests) {
    StatusOr<std::string> response = client.Roundtrip(request);
    if (!response.ok()) {
      std::fprintf(stderr, "aqed-client: %s\n",
                   response.status().message().c_str());
      ++failures;
      continue;
    }
    if (print) {
      if (!PrintResponse(response.value())) ++failures;
    } else if (!service::IsOkResponse(response.value())) {
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  const std::string socket_path = flags.String(
      "--socket", "/tmp/aqed-server.sock", "aqed-server socket path");
  const bool ping = flags.Switch("--ping", "liveness round-trip");
  const bool stats = flags.Switch("--stats", "one-line server counters");
  const bool status =
      flags.Switch("--status", "operator view of the live server state");
  const bool metrics =
      flags.Switch("--metrics", "Prometheus exposition of server metrics");
  const bool health = flags.Switch("--health", "liveness + uptime probe");
  const bool json = flags.Switch(
      "--json", "print the raw JSON response payload instead of prose");
  const bool campaign = flags.Switch("--campaign", "run a fault campaign");
  const std::string batch_path = flags.String(
      "--batch", {}, "replay a JSONL file of raw request payloads");

  service::CampaignRequest request;
  request.tenant = flags.String("--tenant", request.tenant,
                                "tenant name for admission control");
  request.num_mutants = flags.Uint32("--mutants", request.num_mutants,
                                     "mutants sampled per design");
  request.seed =
      flags.Uint64("--seed", request.seed, "campaign sampling seed");
  request.with_aes =
      flags.Switch("--with-aes", "include the AES designs in the catalog");
  request.baseline = flags.Switch(
      "--baseline", "also run the conventional random-simulation baseline");
  request.jobs = flags.Uint32("--jobs", request.jobs,
                              "session worker threads (server may clamp)");
  request.deadline_ms =
      flags.Uint32("--deadline-ms", request.deadline_ms,
                   "per-job wall-clock deadline (0 = none)");
  request.memory_budget_mb =
      flags.Uint32("--memory-budget-mb", request.memory_budget_mb,
                   "session memory budget (0 = ungoverned)");
  request.retries = flags.Uint32("--retries", request.retries,
                                 "escalating-budget retries per job");
  const std::string designs = flags.String(
      "--designs", {}, "comma-separated catalog names (empty = all)");
  std::stringstream design_stream(designs);
  for (std::string name; std::getline(design_stream, name, ',');) {
    if (!name.empty()) request.designs.push_back(name);
  }

  const uint32_t repeat =
      flags.Uint32("--repeat", 1, "loop the batch file this many times");
  const uint32_t clients = flags.Uint32(
      "--clients", 1, "fan the batch out over N concurrent connections");
  flags.RejectUnknown(argv[0]);

  if (!batch_path.empty()) {
    std::ifstream file(batch_path);
    if (!file) {
      std::fprintf(stderr, "aqed-client: cannot read %s\n",
                   batch_path.c_str());
      return 1;
    }
    std::vector<std::string> requests;
    for (std::string line; std::getline(file, line);) {
      if (!line.empty()) requests.push_back(line);
    }
    std::vector<std::string> replay;
    for (uint32_t i = 0; i < repeat; ++i) {
      replay.insert(replay.end(), requests.begin(), requests.end());
    }
    if (clients <= 1) {
      const size_t failures = ReplayOnce(socket_path, replay, true);
      std::printf("batch: %zu requests, %zu failed\n", replay.size(),
                  failures);
      return failures == 0 ? 0 : 1;
    }
    // Stress mode: N connections replaying concurrently. Output would
    // interleave, so workers only count failures.
    std::atomic<size_t> failures{0};
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (uint32_t c = 0; c < clients; ++c) {
      workers.emplace_back([&] {
        failures += ReplayOnce(socket_path, replay, false);
      });
    }
    for (std::thread& worker : workers) worker.join();
    std::printf("stress: %u clients x %zu requests, %zu failed\n", clients,
                replay.size(), failures.load());
    return failures.load() == 0 ? 0 : 1;
  }

  service::Client client(socket_path);
  if (ping) {
    const Status status = client.Ping();
    if (!status.ok()) {
      std::fprintf(stderr, "aqed-client: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (stats) {
    StatusOr<service::StatsResponse> response = client.Stats();
    if (!response.ok()) {
      std::fprintf(stderr, "aqed-client: %s\n",
                   response.status().message().c_str());
      return 1;
    }
    const service::StatsResponse& s = response.value();
    if (!s.ok) {
      std::fprintf(stderr, "aqed-client: %s\n", s.error.c_str());
      return 1;
    }
    std::printf("live %llu, accepted %llu, rejected %llu, cache %llu "
                "entries (%llu hits / %llu misses)\n",
                static_cast<unsigned long long>(s.live_requests),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.cache_entries),
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses));
    return 0;
  }
  if (status) {
    StatusOr<std::string> response =
        client.Roundtrip(service::EncodeStatusRequest());
    if (!response.ok()) {
      std::fprintf(stderr, "aqed-client: %s\n",
                   response.status().message().c_str());
      return 1;
    }
    if (json) {
      std::printf("%s\n", response.value().c_str());
      return service::IsOkResponse(response.value()) ? 0 : 1;
    }
    StatusOr<service::StatusResponse> decoded =
        service::DecodeStatusResponse(response.value());
    if (!decoded.ok() || !decoded.value().ok) {
      std::fprintf(stderr, "aqed-client: %s\n",
                   decoded.ok() ? decoded.value().error.c_str()
                                : decoded.status().message().c_str());
      return 1;
    }
    const service::StatusResponse& s = decoded.value();
    std::printf("uptime %.1f s, %llu requests (%llu campaigns live), "
                "%llu connections\n",
                s.uptime_seconds,
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.live_requests),
                static_cast<unsigned long long>(s.connections));
    std::printf("admission: %llu accepted, %llu rejected "
                "(max live %u, max per tenant %u, executors %u)\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.rejected), s.max_live,
                s.max_tenant_live, s.executors);
    std::printf("tenants:");
    if (s.tenants.empty()) std::printf(" (none yet)");
    for (const service::StatusResponse::Tenant& tenant : s.tenants) {
      std::printf(" %s=%u", tenant.name.c_str(), tenant.live);
    }
    std::printf("\n");
    std::printf("cache: %llu entries, %llu hits, %llu misses, %llu evicted\n",
                static_cast<unsigned long long>(s.cache_entries),
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses),
                static_cast<unsigned long long>(s.cache_evicted));
    std::printf("governor pressure: %lld\n",
                static_cast<long long>(s.governor_pressure));
    std::printf("request latency: p50 %.3g ms, p95 %.3g ms, p99 %.3g ms\n",
                s.request_p50_ms, s.request_p95_ms, s.request_p99_ms);
    return 0;
  }
  if (metrics) {
    StatusOr<std::string> response =
        client.Roundtrip(service::EncodeMetricsRequest());
    if (!response.ok()) {
      std::fprintf(stderr, "aqed-client: %s\n",
                   response.status().message().c_str());
      return 1;
    }
    if (json) {
      std::printf("%s\n", response.value().c_str());
      return service::IsOkResponse(response.value()) ? 0 : 1;
    }
    StatusOr<service::MetricsResponse> decoded =
        service::DecodeMetricsResponse(response.value());
    if (!decoded.ok() || !decoded.value().ok) {
      std::fprintf(stderr, "aqed-client: %s\n",
                   decoded.ok() ? decoded.value().error.c_str()
                                : decoded.status().message().c_str());
      return 1;
    }
    // The exposition is already a text format; print it verbatim.
    std::fputs(decoded.value().prometheus.c_str(), stdout);
    return 0;
  }
  if (health) {
    StatusOr<std::string> response =
        client.Roundtrip(service::EncodeHealthRequest());
    if (!response.ok()) {
      std::fprintf(stderr, "aqed-client: %s\n",
                   response.status().message().c_str());
      return 1;
    }
    if (json) {
      std::printf("%s\n", response.value().c_str());
      return service::IsOkResponse(response.value()) ? 0 : 1;
    }
    StatusOr<service::HealthResponse> decoded =
        service::DecodeHealthResponse(response.value());
    if (!decoded.ok() || !decoded.value().ok) {
      std::fprintf(stderr, "aqed-client: %s\n",
                   decoded.ok() ? decoded.value().error.c_str()
                                : decoded.status().message().c_str());
      return 1;
    }
    std::printf("%s (up %.1f s)\n", decoded.value().state.c_str(),
                decoded.value().uptime_seconds);
    return decoded.value().state == "ok" ? 0 : 1;
  }
  if (campaign) {
    if (request.trace_id == 0) request.trace_id = service::MintTraceId();
    StatusOr<std::string> response =
        client.Roundtrip(service::EncodeCampaignRequest(request));
    if (!response.ok()) {
      std::fprintf(stderr, "aqed-client: %s\n",
                   response.status().message().c_str());
      return 1;
    }
    return PrintResponse(response.value()) ? 0 : 1;
  }
  std::fprintf(stderr,
               "aqed-client: pick a mode: --ping | --stats | --status | "
               "--metrics | --health | --campaign | --batch FILE\n");
  return 2;
}
