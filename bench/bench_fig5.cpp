// Regenerates Fig. 5 of the paper: bugs detected on the memory-controller
// unit — A-QED detects every bug the conventional flow detects, plus the
// corner-case bugs that escape it (paper: 13% unique to A-QED; one bug found
// via RB, the rest via FC).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sched/session.h"

using namespace aqed;

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  const core::SessionOptions session_options =
      bench::AddSessionFlags(flags);
  flags.RejectUnknown(argv[0]);
  printf("Fig. 5: memory-controller unit bugs detected (--jobs %u)\n",
         session_options.jobs);
  bench::PrintRule('=');

  int total = 0, conv_detected = 0, aqed_detected = 0, both = 0;
  int aqed_only = 0, fc_detected = 0, rb_detected = 0;

  const auto& catalog = accel::MemCtrlBugCatalog();
  sched::VerificationSession session(session_options);
  std::vector<core::JobHandle> handles;
  for (const auto& info : catalog) {
    handles.push_back(session.Enqueue(
        [&info](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, info.config, info.bug).acc;
        },
        bench::MemCtrlStudyOptions(info.config), info.name));
  }
  const core::SessionResult results = session.Wait();

  printf("%-24s %-14s %-12s %-10s\n", "bug", "conventional", "aqed",
         "property");
  bench::PrintRule();
  for (size_t i = 0; i < catalog.size(); ++i) {
    const auto& info = catalog[i];
    const core::JobHandle& handle = handles[i];
    ++total;
    const auto campaign = harness::RunCampaign(
        [&](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, info.config, info.bug).acc;
        },
        accel::MemCtrlGolden(info.config),
        bench::MemCtrlConventionalOptions(info.config));

    if (campaign.bug_detected) ++conv_detected;
    if (results.bug_found(handle)) {
      ++aqed_detected;
      if (results.kind(handle) == core::BugKind::kResponseBound ||
          results.kind(handle) == core::BugKind::kInputStarvation) {
        ++rb_detected;
      } else {
        ++fc_detected;
      }
      if (!campaign.bug_detected) ++aqed_only;
    }
    if (campaign.bug_detected && results.bug_found(handle)) ++both;
    printf("%-24s %-14s %-12s %-10s\n", handle.label().c_str(),
           campaign.bug_detected ? "detected" : "ESCAPED",
           results.bug_found(handle) ? "detected" : "MISSED",
           results.bug_found(handle) ? core::BugKindName(results.kind(handle))
                                     : "-");
  }

  bench::PrintRule('=');
  printf("total bugs:                 %d\n", total);
  printf("conventional flow detected: %d\n", conv_detected);
  printf("A-QED detected:             %d\n", aqed_detected);
  printf("detected by both:           %d\n", both);
  printf("unique to A-QED:            %d (%.0f%% of total; paper: ~13%%)\n",
         aqed_only, 100.0 * aqed_only / total);
  printf("A-QED property breakdown:   %d via FC, %d via RB "
         "(paper: one RB, remainder FC)\n",
         fc_detected, rb_detected);
  const bool superset = aqed_detected >= conv_detected && both == conv_detected;
  printf("A-QED detected all conventional-flow bugs: %s\n",
         superset ? "yes (Observation 1 reproduced)" : "NO");
  return 0;
}
