// Regenerates Fig. 5 of the paper: bugs detected on the memory-controller
// unit — A-QED detects every bug the conventional flow detects, plus the
// corner-case bugs that escape it (paper: 13% unique to A-QED; one bug found
// via RB, the rest via FC).
#include <cstdio>

#include "bench_common.h"

using namespace aqed;

int main() {
  printf("Fig. 5: memory-controller unit bugs detected\n");
  bench::PrintRule('=');

  int total = 0, conv_detected = 0, aqed_detected = 0, both = 0;
  int aqed_only = 0, fc_detected = 0, rb_detected = 0;

  printf("%-24s %-14s %-12s %-10s\n", "bug", "conventional", "aqed",
         "property");
  bench::PrintRule();
  for (const auto& info : accel::MemCtrlBugCatalog()) {
    ++total;
    const auto campaign = harness::RunCampaign(
        [&](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, info.config, info.bug).acc;
        },
        accel::MemCtrlGolden(info.config),
        bench::MemCtrlConventionalOptions(info.config));
    const auto result = core::CheckAccelerator(
        [&](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, info.config, info.bug).acc;
        },
        bench::MemCtrlStudyOptions(info.config));

    if (campaign.bug_detected) ++conv_detected;
    if (result.bug_found) {
      ++aqed_detected;
      if (result.kind == core::BugKind::kResponseBound ||
          result.kind == core::BugKind::kInputStarvation) {
        ++rb_detected;
      } else {
        ++fc_detected;
      }
      if (!campaign.bug_detected) ++aqed_only;
    }
    if (campaign.bug_detected && result.bug_found) ++both;
    printf("%-24s %-14s %-12s %-10s\n", info.name,
           campaign.bug_detected ? "detected" : "ESCAPED",
           result.bug_found ? "detected" : "MISSED",
           result.bug_found ? core::BugKindName(result.kind) : "-");
  }

  bench::PrintRule('=');
  printf("total bugs:                 %d\n", total);
  printf("conventional flow detected: %d\n", conv_detected);
  printf("A-QED detected:             %d\n", aqed_detected);
  printf("detected by both:           %d\n", both);
  printf("unique to A-QED:            %d (%.0f%% of total; paper: ~13%%)\n",
         aqed_only, 100.0 * aqed_only / total);
  printf("A-QED property breakdown:   %d via FC, %d via RB "
         "(paper: one RB, remainder FC)\n",
         fc_detected, rb_detected);
  const bool superset = aqed_detected >= conv_detected && both == conv_detected;
  printf("A-QED detected all conventional-flow bugs: %s\n",
         superset ? "yes (Observation 1 reproduced)" : "NO");
  return 0;
}
