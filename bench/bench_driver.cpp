// Canonical performance scenario matrix for the repo's two governed
// workloads: the parallel portfolio hunt (sched suite) and the
// fault-injection campaign (fault suite). Each scenario runs once and is
// measured from outside — wall time, process CPU time (user + sys), RSS at
// scenario end — plus the per-scenario deltas of every registry counter
// (solver conflicts, pool tasks, retries, ...). Results are written as
// canonical JSON files at --out-dir:
//
//   BENCH_sched.json / BENCH_fault.json
//   {"schema":"aqed-bench-v1","suite":"sched","peak_rss_kb":N,
//    "scenarios":[{"name":"hunt_seq","wall_seconds":W,"cpu_seconds":C,
//                  "rss_end_kb":R,"counters":{"sat.conflicts":N,...}}]}
//
// The committed BENCH_*.json at the repo root are the reference baselines;
// CI's perf-smoke step re-runs the matrix and compares warn-only (CI
// machines vary too much to gate on). Locally, gate for real:
//
//   bench_driver --suite sched --compare BENCH_sched.json [--tolerance 25]
//
// --compare prints per-metric deltas vs the old file and exits nonzero when
// wall/cpu/rss regress by more than --tolerance percent (counter deltas are
// informational: under cancellation the amount of *discarded* work is
// legitimately nondeterministic). --warn-only reports but never fails.
//
// The matrix is deliberately small (about a minute end to end) so CI can
// run the *same* scenarios as the committed baselines — scenario names must
// match for --compare to mean anything. Generate and compare baselines with
// the same --suite selection: peak_rss_kb is the process-wide peak sampled
// when a suite finishes, so under --suite all the second suite's peak (and
// each scenario's rss_end_kb) includes memory the earlier suite touched.
// The baseline is fully loaded before the new BENCH_*.json is opened, so
// comparing in place against the file being rewritten is safe; restore the
// committed baseline with git afterwards if the rewrite was unwanted.
//
// Flags: --suite sched|fault|all (default all)
//        --out-dir DIR   where BENCH_*.json land (default ".")
//        --compare OLD.json   compare the matching suite against OLD
//        --tolerance PCT      regression threshold, percent (default 25)
//        --warn-only          print regressions but exit 0
//        --jobs N        cube workers for the hunt_cube scenario (default 8)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "accel/dataflow.h"
#include "accel/multi_action.h"
#include "accel/widepipe.h"
#include "bench_common.h"
#include "decomp/session.h"
#include "fault/campaign.h"
#include "sched/session.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/resource.h"
#include "telemetry/telemetry.h"

using namespace aqed;

namespace {

// ---------------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------------

struct ScenarioResult {
  std::string name;
  double wall_seconds = 0;
  double cpu_seconds = 0;
  int64_t rss_end_kb = 0;
  // Registry counter deltas across the scenario, name-sorted.
  std::vector<std::pair<std::string, uint64_t>> counters;
};

ScenarioResult RunScenario(const std::string& name,
                           const std::function<void()>& body) {
  std::printf("  running %-16s ...", name.c_str());
  std::fflush(stdout);
  const telemetry::MetricsSnapshot before =
      telemetry::MetricsRegistry::Global().Snapshot();
  const telemetry::ResourceUsage res_before = telemetry::SampleResourceUsage();
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  const telemetry::ResourceUsage res_after = telemetry::SampleResourceUsage();
  const telemetry::MetricsSnapshot after =
      telemetry::MetricsRegistry::Global().Snapshot();

  ScenarioResult result;
  result.name = name;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.cpu_seconds = res_after.cpu_seconds() - res_before.cpu_seconds();
  result.rss_end_kb = res_after.rss_kb;
  for (const auto& counter : after.counters) {
    uint64_t base = 0;
    for (const auto& old : before.counters) {
      if (old.name == counter.name) base = old.value;
    }
    if (counter.value > base) {
      result.counters.emplace_back(counter.name, counter.value - base);
    }
  }
  std::printf(" %.2fs wall, %.2fs cpu\n", result.wall_seconds,
              result.cpu_seconds);
  return result;
}

// ---------------------------------------------------------------------------
// Sched suite: the portfolio hunt at two job counts (bench_sched's matrix,
// trimmed one notch shallower so the whole suite stays under a minute)
// ---------------------------------------------------------------------------

core::AqedOptions DriverHuntOptions(accel::MemCtrlConfig config) {
  core::RbOptions rb;
  rb.tau = accel::MemCtrlResponseBound(config);
  rb.in_min = config == accel::MemCtrlConfig::kDoubleBuffer ? 2 : 1;
  return core::AqedOptions::Builder()
      .WithRb(rb)
      .WithFcBound(8)
      .WithRbBound(14)
      .WithConflictBudget(200000)
      .Build();
}

void RunHuntScenario(uint32_t jobs) {
  core::SessionOptions options;
  options.jobs = jobs;
  options.cancel = jobs > 1 ? core::SessionOptions::CancelPolicy::kSession
                            : core::SessionOptions::CancelPolicy::kEntry;
  sched::VerificationSession session(options);
  const std::pair<accel::MemCtrlConfig, accel::MemCtrlBug> designs[] = {
      {accel::MemCtrlConfig::kFifo, accel::MemCtrlBug::kNone},
      {accel::MemCtrlConfig::kLineBuffer, accel::MemCtrlBug::kNone},
      {accel::MemCtrlConfig::kFifo, accel::MemCtrlBug::kFifoStallDeadlock},
  };
  for (const auto& [config, bug] : designs) {
    session.Enqueue(
        [config = config, bug = bug](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, config, bug).acc;
        },
        DriverHuntOptions(config));
  }
  (void)session.Wait();
}

// Single hard property: the portfolio pattern cannot help (there is
// nothing else to schedule), so this scenario exercises intra-property
// parallelism instead — the depth-9 FC refutation of the clean FIFO
// controller stalls past the conflict threshold and escalates into a cube
// fan-out. A clean design is the honest workload here: every cube must be
// refuted, so `--jobs` parallelizes real work rather than racing to a
// lucky model, and the verdict is identical at any job count.
void RunCubeScenario(uint32_t cube_jobs) {
  bmc::BmcOptions::CubeEscalation cube;
  cube.conflict_threshold = 20000;
  cube.num_split_vars = 3;
  // Explicit rather than inherited: this session runs `jobs = 1` (one
  // property — nothing else to overlap), and inheriting would pin the
  // cube fan-out to one worker too.
  cube.jobs = cube_jobs;
  const auto options =
      core::AqedOptions::Builder().WithBound(9).WithCubes(cube).Build();
  core::SessionOptions session_options;
  session_options.jobs = 1;
  sched::VerificationSession session(session_options);
  (void)session.Enqueue(
      [](ir::TransitionSystem& ts) {
        return accel::BuildMemCtrl(ts, accel::MemCtrlConfig::kFifo).acc;
      },
      options, "fifo/clean-cubed");
  (void)session.Wait();
}

// A-QED² decomposition: the widepipe bench configuration is deliberately
// too big for monolithic BMC — the first leg gives the whole pipe a 2 s
// deadline and burns it (UNKNOWN), the second verifies the same design
// decomposed per stage, where the clean stages are isomorphic and dedup
// collapses them to a single one-stage solve. The scenario's wall time is
// therefore "deadline + one fragment solve": the committed baseline is the
// repo's evidence that decomposition turns a hopeless check into a cheap
// one (tests/decomp_test.cpp gates the verdicts themselves).
void RunDecompScenario() {
  const accel::WidePipeConfig config = accel::WidePipeBenchConfig();
  const auto options = core::AqedOptions::Builder()
                           .WithBound(accel::WidePipeMonolithicBound(config))
                           .Build();
  {
    core::SessionOptions session_options;
    session_options.jobs = 1;
    session_options.deadline_ms = 2000;
    session_options.retry.max_retries = 0;
    sched::VerificationSession session(session_options);
    (void)session.Enqueue(
        [config](ir::TransitionSystem& ts) {
          return accel::BuildWidePipe(ts, config).acc;
        },
        options, "widepipe/monolithic");
    (void)session.Wait();
  }
  {
    decomp::DecompOptions decomp_options;
    decomp_options.aqed = options;
    decomp_options.session.jobs = 2;
    decomp::DecomposedSession session(accel::WidePipeDecomposition(config),
                                      decomp_options);
    (void)session.Run();
  }
}

std::vector<ScenarioResult> RunSchedSuite(uint32_t cube_jobs) {
  return {
      RunScenario("hunt_seq", [] { RunHuntScenario(1); }),
      RunScenario("hunt_par2", [] { RunHuntScenario(2); }),
      RunScenario("hunt_cube", [&] { RunCubeScenario(cube_jobs); }),
      RunScenario("bench_decomp", [] { RunDecompScenario(); }),
  };
}

// ---------------------------------------------------------------------------
// Fault suite: two small governed campaigns (no conventional baseline —
// this suite measures the verification path, not the simulator)
// ---------------------------------------------------------------------------

fault::DesignUnderTest DriverMemCtrlDut() {
  fault::DesignUnderTest dut;
  dut.name = "memctrl-fifo";
  dut.build = [](ir::TransitionSystem& ts) {
    return accel::BuildMemCtrl(ts, accel::MemCtrlConfig::kFifo).acc;
  };
  dut.options = core::AqedOptions::Builder(
                    bench::MemCtrlStudyOptions(accel::MemCtrlConfig::kFifo))
                    .WithFcBound(7)
                    .WithSacSpec(accel::MemCtrlSpec(accel::MemCtrlConfig::kFifo))
                    .WithSacBound(8)
                    .Build();
  return dut;
}

core::AqedOptions DriverHlsOptions(uint32_t tau, uint32_t rdin_bound,
                                   core::SpecFn spec) {
  core::RbOptions rb;
  rb.tau = tau;
  rb.rdin_bound = rdin_bound;
  return core::AqedOptions::Builder()
      .WithRb(rb)
      .WithFcBound(10)
      .WithRbBound(tau + 8)
      .WithConflictBudget(400000)
      .WithSacSpec(std::move(spec))
      .WithSacBound(8)
      .Build();
}

void RunCampaignScenario(std::vector<fault::DesignUnderTest> designs,
                         uint32_t num_mutants) {
  fault::FaultCampaignOptions options;
  options.num_mutants = num_mutants;
  options.session.jobs = 2;
  options.session.deadline_ms = 2000;
  options.session.retry.max_retries = 2;
  (void)fault::RunFaultCampaign(designs, options);
}

std::vector<ScenarioResult> RunFaultSuite() {
  return {
      RunScenario("fault_memctrl",
                  [] { RunCampaignScenario({DriverMemCtrlDut()}, 8); }),
      RunScenario("fault_hls",
                  [] {
                    std::vector<fault::DesignUnderTest> designs;
                    designs.push_back(
                        {"alu",
                         [](ir::TransitionSystem& ts) {
                           return accel::BuildAlu(ts, {}).acc;
                         },
                         DriverHlsOptions(accel::AluResponseBound(), 0,
                                          accel::AluSpec()),
                         nullptr,
                         {}});
                    designs.push_back(
                        {"dataflow",
                         [](ir::TransitionSystem& ts) {
                           return accel::BuildDataflow(ts, {}).acc;
                         },
                         DriverHlsOptions(accel::DataflowResponseBound(),
                                          accel::DataflowRdinBound(),
                                          accel::DataflowSpec()),
                         nullptr,
                         {}});
                    RunCampaignScenario(std::move(designs), 8);
                  }),
  };
}

// ---------------------------------------------------------------------------
// Canonical JSON
// ---------------------------------------------------------------------------

std::string SerializeSuite(const std::string& suite,
                           const std::vector<ScenarioResult>& scenarios,
                           int64_t peak_rss_kb) {
  std::ostringstream out;
  char buf[64];
  out << "{\"schema\":\"aqed-bench-v1\",\"suite\":\"" << suite
      << "\",\"peak_rss_kb\":" << peak_rss_kb << ",\"scenarios\":[";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& s = scenarios[i];
    if (i > 0) out << ',';
    std::snprintf(buf, sizeof(buf), "%.3f", s.wall_seconds);
    out << "\n  {\"name\":\"" << s.name << "\",\"wall_seconds\":" << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", s.cpu_seconds);
    out << ",\"cpu_seconds\":" << buf << ",\"rss_end_kb\":" << s.rss_end_kb
        << ",\"counters\":{";
    for (size_t j = 0; j < s.counters.size(); ++j) {
      if (j > 0) out << ',';
      out << '"' << s.counters[j].first << "\":" << s.counters[j].second;
    }
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// --compare
// ---------------------------------------------------------------------------

struct OldScenario {
  double wall_seconds = 0;
  double cpu_seconds = 0;
  int64_t rss_end_kb = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
};

struct OldSuite {
  std::string suite;
  std::vector<std::pair<std::string, OldScenario>> scenarios;
};

std::optional<OldSuite> LoadOldSuite(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  const std::optional<telemetry::Json> root = telemetry::ParseJson(text.str());
  if (!root || !root->is_object()) return std::nullopt;
  const telemetry::Json* schema = root->Find("schema");
  const telemetry::Json* suite = root->Find("suite");
  const telemetry::Json* scenarios = root->Find("scenarios");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != "aqed-bench-v1" || suite == nullptr ||
      !suite->is_string() || scenarios == nullptr || !scenarios->is_array()) {
    return std::nullopt;
  }
  OldSuite old;
  old.suite = suite->AsString();
  for (const telemetry::Json& entry : scenarios->AsArray()) {
    const telemetry::Json* name = entry.Find("name");
    const telemetry::Json* wall = entry.Find("wall_seconds");
    const telemetry::Json* cpu = entry.Find("cpu_seconds");
    const telemetry::Json* rss = entry.Find("rss_end_kb");
    if (name == nullptr || !name->is_string() || wall == nullptr ||
        !wall->is_number() || cpu == nullptr || !cpu->is_number() ||
        rss == nullptr || !rss->is_number()) {
      return std::nullopt;
    }
    OldScenario scenario;
    scenario.wall_seconds = wall->AsNumber();
    scenario.cpu_seconds = cpu->AsNumber();
    scenario.rss_end_kb = rss->AsInt();
    if (const telemetry::Json* counters = entry.Find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [key, value] : counters->AsObject()) {
        if (value.is_number()) {
          scenario.counters.emplace_back(
              key, static_cast<uint64_t>(value.AsInt()));
        }
      }
    }
    old.scenarios.emplace_back(name->AsString(), std::move(scenario));
  }
  return old;
}

double DeltaPercent(double old_value, double new_value) {
  if (old_value <= 0) return 0;
  return (new_value - old_value) / old_value * 100.0;
}

// Prints the per-metric deltas of `scenarios` vs `old`; returns the number
// of wall/cpu/rss regressions beyond `tolerance_pct`.
int CompareSuite(const OldSuite& old,
                 const std::vector<ScenarioResult>& scenarios,
                 double tolerance_pct) {
  int regressions = 0;
  const auto check = [&](const std::string& scenario, const char* metric,
                         double old_value, double new_value,
                         const char* format) {
    const double delta = DeltaPercent(old_value, new_value);
    char old_buf[64], new_buf[64];
    std::snprintf(old_buf, sizeof(old_buf), format, old_value);
    std::snprintf(new_buf, sizeof(new_buf), format, new_value);
    const bool regressed = delta > tolerance_pct;
    std::printf("  %-14s %-12s %10s -> %10s  %+7.1f%%%s\n", scenario.c_str(),
                metric, old_buf, new_buf, delta,
                regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
  };
  for (const ScenarioResult& scenario : scenarios) {
    const OldScenario* base = nullptr;
    for (const auto& [name, old_scenario] : old.scenarios) {
      if (name == scenario.name) base = &old_scenario;
    }
    if (base == nullptr) {
      std::printf("  %-14s (new scenario, no baseline)\n",
                  scenario.name.c_str());
      continue;
    }
    check(scenario.name, "wall_seconds", base->wall_seconds,
          scenario.wall_seconds, "%.3f");
    check(scenario.name, "cpu_seconds", base->cpu_seconds,
          scenario.cpu_seconds, "%.3f");
    check(scenario.name, "rss_end_kb", static_cast<double>(base->rss_end_kb),
          static_cast<double>(scenario.rss_end_kb), "%.0f");
    // Counter deltas are informational: cancellation legitimately changes
    // how much speculative work gets discarded.
    for (const auto& [name, value] : scenario.counters) {
      for (const auto& [old_name, old_value] : base->counters) {
        if (old_name == name && old_value != value) {
          std::printf("  %-14s %-24s %12llu -> %12llu  (info)\n",
                      scenario.name.c_str(), name.c_str(),
                      static_cast<unsigned long long>(old_value),
                      static_cast<unsigned long long>(value));
        }
      }
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  const std::string suite =
      flags.String("--suite", "all", "benchmark suite: sched, fault, or all");
  const std::string out_dir =
      flags.String("--out-dir", ".", "directory for BENCH_*.json results");
  const std::string compare_path = flags.String(
      "--compare", {}, "baseline BENCH_*.json to gate regressions against");
  const uint32_t tolerance = flags.Uint32(
      "--tolerance", 25, "regression tolerance in percent over the baseline");
  const uint32_t cube_jobs =
      flags.Uint32("--jobs", 8, "worker threads for the cube-escalation runs");
  const bool warn_only = flags.Switch(
      "--warn-only", "report regressions without failing the run");
  flags.RejectUnknown(argv[0]);
  if (suite != "sched" && suite != "fault" && suite != "all") {
    std::fprintf(stderr, "%s: --suite must be sched, fault, or all\n",
                 argv[0]);
    return 2;
  }

  // Load the baseline before anything else: the documented in-place usage
  // (`bench_driver --suite sched --compare BENCH_sched.json` from the repo
  // root) points --compare at the very file this run will rewrite, so
  // reading it after opening the output would see a truncated/self-written
  // file. Loading up front also fails fast on a bad path instead of after a
  // minute of benchmarks.
  std::optional<OldSuite> baseline;
  if (!compare_path.empty()) {
    baseline = LoadOldSuite(compare_path);
    if (!baseline) {
      std::fprintf(stderr, "%s: %s is not an aqed-bench-v1 file\n", argv[0],
                   compare_path.c_str());
      return 2;
    }
  }

  // Counters come from the telemetry registry; arm it (spanless — no trace
  // file is written, the registry is read directly).
  telemetry::SetEnabled(true);

  struct SuiteRun {
    std::string name;
    std::vector<ScenarioResult> scenarios;
    int64_t peak_rss_kb = 0;
  };
  std::vector<SuiteRun> runs;
  // Peak RSS is sampled right after each suite so the first suite's number
  // is untainted by later ones. The process-wide peak is monotonic, so with
  // --suite all the *second* suite's peak still includes the first — see
  // the baseline-generation note in the header comment.
  if (suite == "sched" || suite == "all") {
    std::printf("suite sched:\n");
    std::vector<ScenarioResult> scenarios = RunSchedSuite(cube_jobs);
    runs.push_back({"sched", std::move(scenarios),
                    telemetry::SampleResourceUsage().peak_rss_kb});
  }
  if (suite == "fault" || suite == "all") {
    std::printf("suite fault:\n");
    std::vector<ScenarioResult> scenarios = RunFaultSuite();
    runs.push_back({"fault", std::move(scenarios),
                    telemetry::SampleResourceUsage().peak_rss_kb});
  }

  int exit_code = 0;
  for (const SuiteRun& run : runs) {
    const std::string path = out_dir + "/BENCH_" + run.name + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0], path.c_str());
      return 1;
    }
    out << SerializeSuite(run.name, run.scenarios, run.peak_rss_kb);
    std::printf("wrote %s\n", path.c_str());

    if (baseline) {
      const std::optional<OldSuite>& old = baseline;
      if (old->suite != run.name) {
        // With --suite all only the matching suite is compared.
        if (suite != "all") {
          std::fprintf(stderr,
                       "%s: %s holds suite '%s' but this run is '%s'\n",
                       argv[0], compare_path.c_str(), old->suite.c_str(),
                       run.name.c_str());
          return 2;
        }
        continue;
      }
      std::printf("compare vs %s (tolerance %u%%):\n", compare_path.c_str(),
                  tolerance);
      const int regressions =
          CompareSuite(*old, run.scenarios, static_cast<double>(tolerance));
      if (regressions > 0) {
        std::printf("%d metric(s) regressed beyond %u%%%s\n", regressions,
                    tolerance, warn_only ? " (warn-only)" : "");
        if (!warn_only) exit_code = 1;
      } else {
        std::printf("no regressions beyond %u%%\n", tolerance);
      }
    }
  }
  return exit_code;
}
