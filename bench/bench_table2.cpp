// Regenerates Table 2 of the paper: A-QED on (abstracted) HLS designs —
// AES v1-v4 (FC bugs), the custom dataflow design (RB), Rosetta optical flow
// (RB), and CHStone GSM (FC) — reporting the detecting property, runtime,
// and counterexample length.
#include <cstdio>
#include <functional>

#include "accel/aes.h"
#include "accel/dataflow.h"
#include "accel/gsm.h"
#include "accel/optflow.h"
#include "bench_common.h"
#include "sched/session.h"

using namespace aqed;

namespace {

struct Row {
  const char* source;
  const char* design;
  const char* paper_bug;      // property type reported by the paper
  const char* paper_cex;      // paper's CEX length (cycles)
  core::AcceleratorBuilder build;
  core::AqedOptions options;
};

core::AqedOptions HlsOptions(uint32_t tau, uint32_t rdin_bound = 0) {
  core::RbOptions rb;
  rb.tau = tau;
  rb.rdin_bound = rdin_bound;
  return core::AqedOptions::Builder()
      .WithRb(rb)
      .WithFcBound(16)
      .WithRbBound(24)
      .WithConflictBudget(400000)
      .Build();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  const core::SessionOptions session_options =
      bench::AddSessionFlags(flags);
  flags.RejectUnknown(argv[0]);
  printf("Table 2: A-QED results for (abstracted) HLS designs "
         "(--jobs %u)\n", session_options.jobs);
  printf("(the paper likewise verified abstracted versions of these "
         "kernels for BMC scalability)\n");
  bench::PrintRule('=');

  accel::AesConfig aes_base;
  aes_base.rounds = 2;

  std::vector<Row> rows;
  for (auto [bug, name] :
       {std::pair{accel::AesBug::kV1KeyScheduleStale, "AES v1"},
        std::pair{accel::AesBug::kV2QueueOverflow, "AES v2"},
        std::pair{accel::AesBug::kV3KeySampleLate, "AES v3"},
        std::pair{accel::AesBug::kV4RoundSkip, "AES v4"}}) {
    accel::AesConfig config = aes_base;
    config.bug = bug;
    const char* paper_cex = bug == accel::AesBug::kV1KeyScheduleStale ? "136"
                            : bug == accel::AesBug::kV2QueueOverflow  ? "290"
                            : bug == accel::AesBug::kV3KeySampleLate  ? "132"
                                                                      : "94";
    rows.push_back({"AES encryption [Cong 17]", name, "FC", paper_cex,
                    [config](ir::TransitionSystem& ts) {
                      return accel::BuildAes(ts, config).acc;
                    },
                    HlsOptions(accel::AesResponseBound(config))});
  }
  rows.push_back({"Custom design [Chi 19]", "Dataflow", "RB", "98",
                  [](ir::TransitionSystem& ts) {
                    return accel::BuildDataflow(ts, {.bug_credit_leak = true})
                        .acc;
                  },
                  HlsOptions(accel::DataflowResponseBound(),
                             accel::DataflowRdinBound())});
  rows.push_back({"Rosetta [Zhou 18]", "Optical Flow", "RB", "197",
                  [](ir::TransitionSystem& ts) {
                    return accel::BuildOptFlow(ts, {.bug_fifo_sizing = true})
                        .acc;
                  },
                  HlsOptions(accel::OptFlowResponseBound())});
  {
    const auto options =
        core::AqedOptions::Builder(HlsOptions(accel::GsmResponseBound()))
            .WithFcBound(22)
            .Build();
    rows.push_back({"CHStone [Hara 09]", "GSM", "FC", "65",
                    [](ir::TransitionSystem& ts) {
                      return accel::BuildGsm(ts, {.bug_tap_index = true}).acc;
                    },
                    options});
  }

  // One session entry per design row; under --jobs N the per-property jobs
  // of every design run concurrently with first-bug-wins inside each entry.
  sched::VerificationSession session(session_options);
  std::vector<core::JobHandle> handles;
  for (const Row& row : rows) {
    handles.push_back(session.Enqueue(row.build, row.options, row.design));
  }
  const core::SessionResult results = session.Wait();

  printf("%-26s %-14s %-5s %10s %8s %12s\n", "source", "design", "bug",
         "runtime[s]", "cex", "paper cex");
  bench::PrintRule();
  bool all_found = true;
  bool kinds_match = true;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const core::JobHandle& handle = handles[i];
    all_found &= results.bug_found(handle);
    const bool is_rb =
        results.kind(handle) == core::BugKind::kResponseBound ||
        results.kind(handle) == core::BugKind::kInputStarvation;
    const char* kind =
        !results.bug_found(handle) ? "MISS" : (is_rb ? "RB" : "FC");
    kinds_match &= results.bug_found(handle) &&
                   ((row.paper_bug[0] == 'R') == is_rb);
    printf("%-26s %-14s %-5s %10.3f %8u %12s\n", row.source, row.design,
           kind, results.solver_seconds(handle), results.cex_cycles(handle),
           row.paper_cex);
  }
  bench::PrintRule('=');
  if (session_options.jobs != 1) {
    printf("%s", results.stats.ToTable().c_str());
    bench::PrintRule('=');
  }
  printf("all bugs detected: %s; property types match the paper: %s\n",
         all_found ? "yes" : "NO", kinds_match ? "yes" : "NO");
  printf("(absolute CEX lengths differ because the designs are abstracted "
         "more aggressively than the paper's; the FC/RB split and the "
         "relative ordering — AES v2 hardest among the AES variants — are "
         "preserved)\n");
  return 0;
}
