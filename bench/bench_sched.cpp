// Portfolio-hunt benchmark for the parallel verification scheduler: a
// session holds several clean memory-controller configurations plus one
// design with a cheap response-bound bug, submitted last. With --jobs 1 the
// session must refute every clean property group before it reaches the bug;
// with more jobs and session-wide first-bug-wins cancellation the cheap RB
// job reports the bug early and the expensive clean refutations are
// cancelled mid-flight. The wall-clock ratio is the headline number: it
// comes from *not doing work*, so it holds even on a single core.
//
// Usage: bench_sched [--jobs N] [--trace-out P] [--metrics-out P]
//                    [--sample-period-ms N]
//   (N > 1 enables the parallel run; default 4. Telemetry files capture the
//   parallel hunt — the run whose schedule is worth looking at.)
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sched/session.h"
#include "support/stats.h"

using namespace aqed;

namespace {

// Study options trimmed so a clean FC refutation costs on the order of a
// second: deep enough to be real work, shallow enough that the benchmark
// completes quickly at --jobs 1.
core::AqedOptions HuntOptions(accel::MemCtrlConfig config) {
  core::RbOptions rb;
  rb.tau = accel::MemCtrlResponseBound(config);
  rb.in_min = config == accel::MemCtrlConfig::kDoubleBuffer ? 2 : 1;
  return core::AqedOptions::Builder()
      .WithRb(rb)
      .WithFcBound(9)
      .WithRbBound(16)
      .WithConflictBudget(400000)
      .Build();
}

struct HuntEntry {
  const char* name;
  accel::MemCtrlConfig config;
  accel::MemCtrlBug bug;
};

// The buggy design goes last: the sequential hunt pays for every clean
// design before finding it, the parallel hunt does not.
constexpr HuntEntry kHunt[] = {
    {"fifo/clean", accel::MemCtrlConfig::kFifo, accel::MemCtrlBug::kNone},
    {"double_buffer/clean", accel::MemCtrlConfig::kDoubleBuffer,
     accel::MemCtrlBug::kNone},
    {"line_buffer/clean", accel::MemCtrlConfig::kLineBuffer,
     accel::MemCtrlBug::kNone},
    {"fifo/stall_deadlock", accel::MemCtrlConfig::kFifo,
     accel::MemCtrlBug::kFifoStallDeadlock},
};

// `telemetry` contributes only the sink paths and the flight-recorder
// period; scheduling knobs are fixed by the benchmark itself.
struct HuntRun {
  core::SessionResult result;
  std::vector<core::JobHandle> handles;  // one per kHunt entry
};

HuntRun RunHunt(uint32_t jobs, const core::SessionOptions& telemetry = {}) {
  core::SessionOptions options;
  options.jobs = jobs;
  options.cancel = core::SessionOptions::CancelPolicy::kSession;
  options.trace_path = telemetry.trace_path;
  options.metrics_path = telemetry.metrics_path;
  options.sample_period_ms = telemetry.sample_period_ms;
  sched::VerificationSession session(options);
  HuntRun run;
  for (const HuntEntry& entry : kHunt) {
    run.handles.push_back(session.Enqueue(
        [&entry](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, entry.config, entry.bug).acc;
        },
        HuntOptions(entry.config), entry.name));
  }
  run.result = session.Wait();
  return run;
}

void PrintVerdicts(const HuntRun& run) {
  for (const core::JobHandle& handle : run.handles) {
    if (run.result.bug_found(handle)) {
      printf("  %-22s BUG %s, %u-cycle trace\n", handle.label().c_str(),
             core::BugKindName(run.result.kind(handle)),
             run.result.cex_cycles(handle));
    } else {
      printf("  %-22s clean within bound\n", handle.label().c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  const core::SessionOptions parsed = bench::AddSessionFlags(flags);
  flags.RejectUnknown(argv[0]);
  const uint32_t jobs = parsed.jobs > 1 ? parsed.jobs : 4;

  printf("Portfolio hunt: %zu designs, response-bound bug submitted last\n",
         std::size(kHunt));
  bench::PrintRule('=');

  printf("--jobs 1 (sequential baseline)\n");
  const HuntRun serial = RunHunt(1);
  PrintVerdicts(serial);
  printf("%s", serial.result.stats.ToTable().c_str());
  bench::PrintRule();

  printf("--jobs %u (first bug cancels the session)\n", jobs);
  const HuntRun parallel = RunHunt(jobs, parsed);
  PrintVerdicts(parallel);
  printf("%s", parallel.result.stats.ToTable().c_str());
  bench::PrintRule('=');
  if (!parsed.trace_path.empty()) {
    printf("trace written to %s (load in https://ui.perfetto.dev)\n",
           parsed.trace_path.c_str());
  }
  if (!parsed.metrics_path.empty()) {
    printf("metrics written to %s\n", parsed.metrics_path.c_str());
  }

  // The contract: parallelism may only change how much work is *discarded*,
  // never a verdict.
  bool verdicts_match = true;
  for (size_t i = 0; i < std::size(kHunt); ++i) {
    const core::JobHandle& s = serial.handles[i];
    const core::JobHandle& p = parallel.handles[i];
    if (serial.result.bug_found(s) != parallel.result.bug_found(p) ||
        (serial.result.bug_found(s) &&
         (serial.result.kind(s) != parallel.result.kind(p) ||
          serial.result.cex_cycles(s) != parallel.result.cex_cycles(p)))) {
      printf("VERDICT MISMATCH on %s\n", kHunt[i].name);
      verdicts_match = false;
    }
  }
  const double speedup = parallel.result.wall_seconds > 0
                             ? serial.result.wall_seconds /
                                   parallel.result.wall_seconds
                             : 0.0;
  printf("wall: %.3fs sequential vs %.3fs at --jobs %u  =>  %.2fx %s\n",
         serial.result.wall_seconds, parallel.result.wall_seconds, jobs,
         speedup,
         verdicts_match ? "(identical verdicts)" : "(VERDICTS DIFFER)");
  return verdicts_match && speedup >= 1.5 ? 0 : 1;
}
