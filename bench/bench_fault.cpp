// Fault-injection campaign over the seed accelerators: detection coverage
// and detection latency of the A-QED property suite on seeded mutants, with
// a conventional random-simulation baseline on the same mutants.
//
// This is the mechanized, at-scale version of the paper's injected-bug
// study (Table 1 / Fig. 5): instead of fifteen hand-written bugs the engine
// samples `--mutants` seeded IR mutations across memctrl (all three
// configurations), AES, dataflow, optical flow, and the multi-action ALU,
// verifies every mutant under the session's resource governance (per-job
// deadlines, escalating-budget retries), and classifies each one.
//
// Flags: --mutants N  total mutants across all designs (default 60)
//        --seed S     campaign seed (default 0xA9EDFA17)
//        --jobs N --deadline-ms N --memory-budget-mb N --retries N
//        --trace-out P --metrics-out P          (see bench_common.h)
//        --no-baseline  skip the conventional-flow baseline
//        --no-aes       drop the (most expensive) AES design
//        --journal P    durable campaign: append each classified mutant to
//                       the CRC-guarded JSONL journal P as it lands
//        --resume       replay --journal first and verify only the mutants
//                       it does not already classify
//        --cache P      content-addressed solve cache: load P before the
//                       campaign, consult it per mutant, persist it after
//                       (CRC-guarded JSONL; poisoned lines are dropped and
//                       the mutants re-solved)
//        --cache-max-entries N  bound the cache: at save time the
//                       least-recently-used entries beyond N are trimmed
//                       (0 = unbounded, the default)
//        --designs A,B  restrict the campaign to the named catalog designs
//                       (same names aqed-client --designs accepts)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/campaign.h"
#include "service/cache.h"
#include "service/registry.h"

using namespace aqed;

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  fault::FaultCampaignOptions options;
  options.session = bench::AddSessionFlags(flags);
  options.num_mutants =
      flags.Uint32("--mutants", 60, "mutants sampled per design");
  options.seed =
      flags.Uint64("--seed", options.seed, "campaign sampling seed");
  options.conventional_baseline = !flags.Switch(
      "--no-baseline", "skip the conventional random-simulation baseline");
  options.journal_path = flags.String(
      "--journal", {}, "CRC-JSONL campaign journal for durable resume");
  options.resume =
      flags.Switch("--resume", "replay the journal before solving");
  const std::string cache_path =
      flags.String("--cache", {}, "persistent solve-cache file");
  const uint32_t cache_max_entries = flags.Uint32(
      "--cache-max-entries", 0, "LRU bound on cached verdicts (0 = unbounded)");
  const bool with_aes =
      !flags.Switch("--no-aes", "drop the AES designs from the catalog");
  const std::string design_filter = flags.String(
      "--designs", {}, "comma-separated catalog names to enroll (empty = all)");
  // Deadline-tripped jobs are rescued by escalation (2 s -> 4 s -> 8 s ->
  // 16 s -> 32 s), so default to four retries; an explicit --retries wins.
  // The last rung is pure headroom: the hardest surviving refutation takes
  // ~10 s even with --jobs oversubscribing a single core, so the final
  // attempt always finishes on work, never on the wall clock.
  if (!flags.Seen("--retries")) options.session.retry.max_retries = 4;
  flags.RejectUnknown(argv[0]);

  // The design list lives in the service catalog (src/service/registry.h)
  // so aqed-server campaigns are built from the exact same configurations —
  // that is what makes server and CLI classification digests comparable.
  StatusOr<std::vector<fault::DesignUnderTest>> selection =
      service::SelectDesigns(service::BuiltinDesigns({.with_aes = with_aes}),
                             std::string_view(design_filter));
  if (!selection.ok()) {
    fprintf(stderr, "%s\n", selection.status().message().c_str());
    return 2;
  }
  std::vector<fault::DesignUnderTest> designs = std::move(selection).value();

  service::SolveCache cache;
  service::CampaignCacheAdapter cache_adapter(cache);
  if (!cache_path.empty()) {
    cache.Load(cache_path);
    cache.SetMaxEntries(cache_max_entries);
    options.cache = &cache_adapter;
  }

  printf("Fault-injection campaign: %u mutants, seed 0x%llx, --jobs %u, "
         "deadline %u ms, retries %u\n",
         options.num_mutants,
         static_cast<unsigned long long>(options.seed), options.session.jobs,
         options.session.deadline_ms, options.session.retry.max_retries);
  bench::PrintRule('=');

  const fault::FaultCampaignResult result =
      fault::RunFaultCampaign(designs, options);

  printf("Detection coverage\n");
  bench::PrintRule();
  printf("%s", result.ToTable().c_str());
  bench::PrintRule('=');

  // Detection latency: A-QED counterexample length vs the conventional
  // flow's failing-trace length, per design (detected mutants only).
  printf("Detection latency (cycles, detected mutants only)\n");
  bench::PrintRule();
  printf("%-18s %12s %12s | %14s %14s %10s\n", "design", "aqed avg",
         "aqed max", "conv detected", "conv avg", "conv max");
  std::vector<std::string> names;
  for (const auto& m : result.mutants) {
    if (std::find(names.begin(), names.end(), m.design) == names.end()) {
      names.push_back(m.design);
    }
  }
  for (const std::string& name : names) {
    uint64_t aqed_sum = 0, aqed_max = 0, aqed_n = 0;
    uint64_t conv_sum = 0, conv_max = 0, conv_n = 0, golden_n = 0;
    for (const auto& m : result.mutants) {
      if (m.design != name) continue;
      if (m.cex_cycles > 0) {
        ++aqed_n;
        aqed_sum += m.cex_cycles;
        aqed_max = std::max<uint64_t>(aqed_max, m.cex_cycles);
      }
      if (m.golden_ran) {
        ++golden_n;
        if (m.golden_detected) {
          ++conv_n;
          conv_sum += m.golden_cycles;
          conv_max = std::max(conv_max, m.golden_cycles);
        }
      }
    }
    printf("%-18s %12.1f %12llu | %9llu/%-4llu %14.1f %10llu\n", name.c_str(),
           aqed_n ? static_cast<double>(aqed_sum) / aqed_n : 0.0,
           static_cast<unsigned long long>(aqed_max),
           static_cast<unsigned long long>(conv_n),
           static_cast<unsigned long long>(golden_n),
           conv_n ? static_cast<double>(conv_sum) / conv_n : 0.0,
           static_cast<unsigned long long>(conv_max));
  }
  bench::PrintRule('=');

  if (options.session.jobs != 1) {
    printf("%s", result.stats.ToTable().c_str());
    bench::PrintRule('=');
  }

  if (!options.journal_path.empty()) {
    printf("journal: %s — resumed %zu, re-verified %zu",
           options.journal_path.c_str(), result.resumed,
           result.mutants.size() - result.resumed);
    if (result.journal_skipped > 0) {
      printf(", skipped %zu corrupt record%s", result.journal_skipped,
             result.journal_skipped == 1 ? "" : "s");
    }
    if (result.journal_torn_tail) printf(", dropped a torn tail");
    printf("\n");
  }
  if (!cache_path.empty()) {
    const Status saved = cache.Save(cache_path);
    printf("cache: %s — %zu hits, %zu misses, %zu entries",
           cache_path.c_str(), result.cache_hits, result.cache_misses,
           cache.size());
    if (cache.poisoned() > 0) {
      printf(", dropped %llu poisoned line%s",
             static_cast<unsigned long long>(cache.poisoned()),
             cache.poisoned() == 1 ? "" : "s");
    }
    if (cache.evicted() > 0) {
      printf(", evicted %llu LRU entr%s",
             static_cast<unsigned long long>(cache.evicted()),
             cache.evicted() == 1 ? "y" : "ies");
    }
    printf("\n");
    if (!saved.ok()) {
      fprintf(stderr, "cache save failed: %s\n", saved.message().c_str());
    }
  }
  const size_t silent = result.num_silent_survivors();
  printf("classified: %zu/%zu (%.1f%%), retries: %zu, "
         "unknown[budget]: %zu, unknown[deadline]: %zu\n",
         result.num_classified(), result.mutants.size(),
         100.0 * result.classified_fraction(), result.stats.num_retries(),
         result.stats.num_unknown(UnknownReason::kConflictBudget),
         result.stats.num_unknown(UnknownReason::kDeadline));
  printf("silent survivors (conventional-detected, A-QED-missed): %zu\n",
         silent);
  printf("classification digest: %016llx\n",
         static_cast<unsigned long long>(result.ClassificationDigest()));
  printf("campaign wall time: %.2f s\n", result.wall_seconds);
  return result.classified_fraction() >= 0.9 ? 0 : 1;
}
