// Fault-injection campaign over the seed accelerators: detection coverage
// and detection latency of the A-QED property suite on seeded mutants, with
// a conventional random-simulation baseline on the same mutants.
//
// This is the mechanized, at-scale version of the paper's injected-bug
// study (Table 1 / Fig. 5): instead of fifteen hand-written bugs the engine
// samples `--mutants` seeded IR mutations across memctrl (all three
// configurations), AES, dataflow, optical flow, and the multi-action ALU,
// verifies every mutant under the session's resource governance (per-job
// deadlines, escalating-budget retries), and classifies each one.
//
// Flags: --mutants N  total mutants across all designs (default 60)
//        --seed S     campaign seed (default 0xA9EDFA17)
//        --jobs N --deadline-ms N --memory-budget-mb N --retries N
//        --trace-out P --metrics-out P          (see bench_common.h)
//        --no-baseline  skip the conventional-flow baseline
//        --no-aes       drop the (most expensive) AES design
//        --journal P    durable campaign: append each classified mutant to
//                       the CRC-guarded JSONL journal P as it lands
//        --resume       replay --journal first and verify only the mutants
//                       it does not already classify
#include <cstdio>
#include <string>
#include <vector>

#include "accel/aes.h"
#include "accel/dataflow.h"
#include "accel/memctrl.h"
#include "accel/multi_action.h"
#include "accel/optflow.h"
#include "bench_common.h"
#include "fault/campaign.h"

using namespace aqed;

namespace {

fault::DesignUnderTest MemCtrlDut(accel::MemCtrlConfig config) {
  fault::DesignUnderTest dut;
  dut.name = std::string("memctrl-") + accel::MemCtrlConfigName(config);
  dut.build = [config](ir::TransitionSystem& ts) {
    return accel::BuildMemCtrl(ts, config).acc;
  };
  // Campaign bounds are tighter than the Table 1 study's: mutant
  // counterexamples are shallow (they corrupt the first transaction — every
  // FC detection in the campaign lands at depth <= 7), and refutation cost
  // grows steeply with depth. Bound 7 keeps even the hardest surviving
  // mutant's FC refutation several times under the escalated deadline
  // ladder, so no final verdict ever rides on a wall-clock race and
  // classifications stay identical across --jobs counts.
  dut.options =
      core::AqedOptions::Builder(bench::MemCtrlStudyOptions(config))
          .WithFcBound(7)
          .WithSacSpec(accel::MemCtrlSpec(config))
          .WithSacBound(8)
          .Build();
  dut.golden = accel::MemCtrlGolden(config);
  dut.conventional = bench::MemCtrlConventionalOptions(config);
  return dut;
}

core::AqedOptions HlsOptions(uint32_t tau, uint32_t rdin_bound,
                             core::SpecFn spec, uint32_t sac_bound) {
  core::RbOptions rb;
  rb.tau = tau;
  rb.rdin_bound = rdin_bound;
  auto builder = core::AqedOptions::Builder()
                     .WithRb(rb)
                     .WithFcBound(10)
                     .WithRbBound(tau + 8)
                     .WithConflictBudget(400000);
  if (spec) builder.WithSacSpec(std::move(spec)).WithSacBound(sac_bound);
  return builder.Build();
}

harness::CampaignOptions HlsConventional() {
  harness::CampaignOptions options;
  options.num_seeds = 10;
  options.testbench.max_cycles = 300;
  options.testbench.hang_timeout = 150;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  fault::FaultCampaignOptions options;
  options.session = bench::ParseSessionOptions(flags);
  options.num_mutants = flags.Uint32("--mutants", 60);
  options.seed = flags.Uint64("--seed", options.seed);
  options.conventional_baseline = !flags.Switch("--no-baseline");
  options.journal_path = flags.String("--journal");
  options.resume = flags.Switch("--resume");
  const bool with_aes = !flags.Switch("--no-aes");
  // Deadline-tripped jobs are rescued by escalation (2 s -> 4 s -> 8 s ->
  // 16 s -> 32 s), so default to four retries; an explicit --retries wins.
  // The last rung is pure headroom: the hardest surviving refutation takes
  // ~10 s even with --jobs oversubscribing a single core, so the final
  // attempt always finishes on work, never on the wall clock.
  if (!flags.Seen("--retries")) options.session.retry.max_retries = 4;
  flags.RejectUnknown(argv[0]);

  std::vector<fault::DesignUnderTest> designs;
  designs.push_back(MemCtrlDut(accel::MemCtrlConfig::kFifo));
  designs.push_back(MemCtrlDut(accel::MemCtrlConfig::kDoubleBuffer));
  designs.push_back(MemCtrlDut(accel::MemCtrlConfig::kLineBuffer));
  designs.push_back(
      {"alu",
       [](ir::TransitionSystem& ts) { return accel::BuildAlu(ts, {}).acc; },
       HlsOptions(accel::AluResponseBound(), 0, accel::AluSpec(), 8),
       accel::AluGolden(), HlsConventional()});
  designs.push_back({"dataflow",
                     [](ir::TransitionSystem& ts) {
                       return accel::BuildDataflow(ts, {}).acc;
                     },
                     HlsOptions(accel::DataflowResponseBound(),
                                accel::DataflowRdinBound(),
                                accel::DataflowSpec(), 8),
                     accel::DataflowGolden(), HlsConventional()});
  designs.push_back({"optflow",
                     [](ir::TransitionSystem& ts) {
                       return accel::BuildOptFlow(ts, {}).acc;
                     },
                     HlsOptions(accel::OptFlowResponseBound(), 0,
                                accel::OptFlowSpec(), 8),
                     accel::OptFlowGolden(), HlsConventional()});
  if (with_aes) {
    // Mini-AES with one round: the heaviest design here — a single round
    // keeps FC refutations inside the per-job deadline while preserving the
    // key schedule, queue, and batch logic mutants land in.
    accel::AesConfig aes;
    aes.rounds = 1;
    // The duplicated (orig + dup) S-box datapath makes AES FC refutations
    // several times costlier per depth than the other designs', so FC gets
    // a shallow bound covering queue/handshake mutants; the (single-copy,
    // far cheaper) SAC spec carries detection of the round-datapath and
    // key-schedule mutants FC cannot reach at that depth.
    const auto aes_options =
        core::AqedOptions::Builder(
            HlsOptions(accel::AesResponseBound(aes), 0, accel::AesSpec(aes),
                       8))
            .WithFcBound(7)
            .Build();
    designs.push_back({"aes",
                       [aes](ir::TransitionSystem& ts) {
                         return accel::BuildAes(ts, aes).acc;
                       },
                       aes_options, accel::AesGolden(aes), HlsConventional()});
  }

  printf("Fault-injection campaign: %u mutants, seed 0x%llx, --jobs %u, "
         "deadline %u ms, retries %u\n",
         options.num_mutants,
         static_cast<unsigned long long>(options.seed), options.session.jobs,
         options.session.deadline_ms, options.session.retry.max_retries);
  bench::PrintRule('=');

  const fault::FaultCampaignResult result =
      fault::RunFaultCampaign(designs, options);

  printf("Detection coverage\n");
  bench::PrintRule();
  printf("%s", result.ToTable().c_str());
  bench::PrintRule('=');

  // Detection latency: A-QED counterexample length vs the conventional
  // flow's failing-trace length, per design (detected mutants only).
  printf("Detection latency (cycles, detected mutants only)\n");
  bench::PrintRule();
  printf("%-18s %12s %12s | %14s %14s %10s\n", "design", "aqed avg",
         "aqed max", "conv detected", "conv avg", "conv max");
  std::vector<std::string> names;
  for (const auto& m : result.mutants) {
    if (std::find(names.begin(), names.end(), m.design) == names.end()) {
      names.push_back(m.design);
    }
  }
  for (const std::string& name : names) {
    uint64_t aqed_sum = 0, aqed_max = 0, aqed_n = 0;
    uint64_t conv_sum = 0, conv_max = 0, conv_n = 0, golden_n = 0;
    for (const auto& m : result.mutants) {
      if (m.design != name) continue;
      if (m.cex_cycles > 0) {
        ++aqed_n;
        aqed_sum += m.cex_cycles;
        aqed_max = std::max<uint64_t>(aqed_max, m.cex_cycles);
      }
      if (m.golden_ran) {
        ++golden_n;
        if (m.golden_detected) {
          ++conv_n;
          conv_sum += m.golden_cycles;
          conv_max = std::max(conv_max, m.golden_cycles);
        }
      }
    }
    printf("%-18s %12.1f %12llu | %9llu/%-4llu %14.1f %10llu\n", name.c_str(),
           aqed_n ? static_cast<double>(aqed_sum) / aqed_n : 0.0,
           static_cast<unsigned long long>(aqed_max),
           static_cast<unsigned long long>(conv_n),
           static_cast<unsigned long long>(golden_n),
           conv_n ? static_cast<double>(conv_sum) / conv_n : 0.0,
           static_cast<unsigned long long>(conv_max));
  }
  bench::PrintRule('=');

  if (options.session.jobs != 1) {
    printf("%s", result.stats.ToTable().c_str());
    bench::PrintRule('=');
  }

  if (!options.journal_path.empty()) {
    printf("journal: %s — resumed %zu, re-verified %zu",
           options.journal_path.c_str(), result.resumed,
           result.mutants.size() - result.resumed);
    if (result.journal_skipped > 0) {
      printf(", skipped %zu corrupt record%s", result.journal_skipped,
             result.journal_skipped == 1 ? "" : "s");
    }
    if (result.journal_torn_tail) printf(", dropped a torn tail");
    printf("\n");
  }
  const size_t silent = result.num_silent_survivors();
  printf("classified: %zu/%zu (%.1f%%), retries: %zu, "
         "unknown[budget]: %zu, unknown[deadline]: %zu\n",
         result.num_classified(), result.mutants.size(),
         100.0 * result.classified_fraction(), result.stats.num_retries(),
         result.stats.num_unknown(UnknownReason::kConflictBudget),
         result.stats.num_unknown(UnknownReason::kDeadline));
  printf("silent survivors (conventional-detected, A-QED-missed): %zu\n",
         silent);
  printf("classification digest: %016llx\n",
         static_cast<unsigned long long>(result.ClassificationDigest()));
  printf("campaign wall time: %.2f s\n", result.wall_seconds);
  return result.classified_fraction() >= 0.9 ? 0 : 1;
}
