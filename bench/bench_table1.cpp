// Regenerates Table 1 of the paper: A-QED vs the conventional verification
// flow on the memory-controller unit — runtime and counterexample/detection
// trace length, each as [min, avg, max] over the detected bugs.
//
// Setup effort (1 person-day vs 30 person-days in the paper) is a human
// metric that cannot be recomputed; it is reported from the paper for
// context. The mechanizable claims reproduced here are: (a) A-QED traces are
// dramatically shorter than conventional failure traces (paper: 37x), and
// (b) A-QED detection is fast.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sched/session.h"
#include "support/stats.h"

using namespace aqed;

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  const core::SessionOptions session_options =
      bench::AddSessionFlags(flags);
  flags.RejectUnknown(argv[0]);
  printf("Table 1: A-QED vs conventional flow on the memory-controller "
         "unit (--jobs %u)\n", session_options.jobs);
  bench::PrintRule('=');

  MinAvgMax aqed_runtime, aqed_trace;
  MinAvgMax conv_runtime, conv_trace;

  // One session entry per catalog bug: the per-property jobs of all bugs
  // run concurrently under --jobs N.
  const auto& catalog = accel::MemCtrlBugCatalog();
  sched::VerificationSession session(session_options);
  std::vector<core::JobHandle> handles;
  for (const auto& info : catalog) {
    handles.push_back(session.Enqueue(
        [&info](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, info.config, info.bug).acc;
        },
        bench::MemCtrlStudyOptions(info.config), info.name));
  }
  const core::SessionResult results = session.Wait();

  printf("%-24s %-6s %10s %8s | %12s %10s\n", "bug", "kind", "aqed[s]",
         "cex", "conv[s]", "det.cycle");
  bench::PrintRule();
  for (size_t i = 0; i < catalog.size(); ++i) {
    const auto& info = catalog[i];
    const core::JobHandle& handle = handles[i];
    const auto campaign = harness::RunCampaign(
        [&](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, info.config, info.bug).acc;
        },
        accel::MemCtrlGolden(info.config),
        bench::MemCtrlConventionalOptions(info.config));

    if (results.bug_found(handle)) {
      aqed_runtime.Add(results.solver_seconds(handle));
      aqed_trace.Add(results.cex_cycles(handle));
    }
    if (campaign.bug_detected) {
      conv_runtime.Add(campaign.seconds);
      conv_trace.Add(static_cast<double>(campaign.detection_cycle));
    }
    printf("%-24s %-6s %10.3f %8u | ", handle.label().c_str(),
           results.bug_found(handle) ? core::BugKindName(results.kind(handle))
                                     : "MISS",
           results.solver_seconds(handle), results.cex_cycles(handle));
    if (campaign.bug_detected) {
      printf("%12.3f %10llu\n", campaign.seconds,
             static_cast<unsigned long long>(campaign.detection_cycle));
    } else {
      printf("%12s %10s\n", "escape", "-");
    }
  }
  if (session_options.jobs != 1) {
    bench::PrintRule();
    printf("%s", results.stats.ToTable().c_str());
  }

  bench::PrintRule('=');
  printf("%-28s %-28s %-22s\n", "Verification flow",
         "Runtime (s) [min,avg,max]", "Trace (cycles) [min,avg,max]");
  bench::PrintRule();
  printf("%-28s %-28s %-22s\n", "A-QED", aqed_runtime.ToString(3).c_str(),
         aqed_trace.ToString(1).c_str());
  printf("%-28s %-28s %-22s\n", "Conventional",
         conv_runtime.ToString(3).c_str(), conv_trace.ToString(1).c_str());
  bench::PrintRule();
  if (!aqed_trace.empty() && !conv_trace.empty()) {
    printf("trace-length ratio (conventional avg / A-QED avg): %.1fx "
           "(paper: ~37x)\n",
           conv_trace.avg() / aqed_trace.avg());
  }
  printf("setup effort (from the paper, not re-measurable): A-QED 1 "
         "person-day vs conventional 30 person-days (30x)\n");
  return 0;
}
