// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "accel/memctrl.h"
#include "aqed/checker.h"
#include "harness/conventional_flow.h"
#include "service/registry.h"

namespace aqed::bench {

// Minimal command-line helper shared by the bench binaries. Every flag is
// either a bare switch (--cancel-session) or a --name VALUE pair; the last
// occurrence of a repeated flag wins. Each Switch()/Value() probe marks the
// arguments it matched, so after a main has declared its full flag set a
// final RejectUnknown() call turns any leftover --flag (a typo, or a flag
// from some other bench) into a hard error instead of silence.
//
// Probes also *register* their flag (with an optional one-line help text),
// so by the time RejectUnknown() runs the parser knows the binary's whole
// flag set: `--help` (or `-h`) anywhere on the command line prints it and
// exits 0.
class FlagParser {
 public:
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
    used_.assign(args_.size(), 0);
  }

  // True iff the bare switch appears anywhere on the command line.
  bool Switch(std::string_view name, const char* help = nullptr) const {
    Register(name, /*takes_value=*/false, help);
    bool found = false;
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        used_[i] = 1;
        found = true;
      }
    }
    return found;
  }

  // The value of the last `--name VALUE` occurrence, or nullptr.
  const std::string* Value(std::string_view name,
                           const char* help = nullptr) const {
    Register(name, /*takes_value=*/true, help);
    const std::string* found = nullptr;
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        used_[i] = used_[i + 1] = 1;
        found = &args_[i + 1];
      }
    }
    return found;
  }

  // True iff --name was given with a value (used for "an explicit flag
  // overrides the bench default" logic).
  bool Seen(std::string_view name) const { return Value(name) != nullptr; }

  // Numeric accessors accept decimal, 0x-hex, and octal (strtoul base 0).
  uint32_t Uint32(std::string_view name, uint32_t fallback,
                  const char* help = nullptr) const {
    const std::string* v = Value(name, help);
    return v ? static_cast<uint32_t>(std::strtoul(v->c_str(), nullptr, 0))
             : fallback;
  }

  uint64_t Uint64(std::string_view name, uint64_t fallback,
                  const char* help = nullptr) const {
    const std::string* v = Value(name, help);
    return v ? std::strtoull(v->c_str(), nullptr, 0) : fallback;
  }

  std::string String(std::string_view name, std::string fallback = {},
                     const char* help = nullptr) const {
    const std::string* v = Value(name, help);
    return v ? *v : fallback;
  }

  // Every registered flag, one per line, in probe order.
  void PrintHelp(const char* program) const {
    std::printf("usage: %s [flags]\n\nflags:\n", program);
    for (const Flag& flag : flags_) {
      std::string spelling = flag.name;
      if (flag.takes_value) spelling += " VALUE";
      std::printf("  %-28s %s\n", spelling.c_str(),
                  flag.help != nullptr ? flag.help : "");
    }
    std::printf("  %-28s %s\n", "--help", "print this help and exit 0");
  }

  // Call after every flag has been probed. `--help`/`-h` prints the
  // registered flag set and exits 0; otherwise any leftover `--something`
  // no Switch()/Value() call matched (a typo, or a flag from some other
  // bench) exits with status 2 instead of silence. Non-flag positional
  // arguments are left alone (none of the benches take any, but a VALUE
  // that happens to follow an unknown flag should be reported via its
  // flag, not separately).
  void RejectUnknown(const char* program) const {
    for (const std::string& arg : args_) {
      if (arg == "--help" || arg == "-h") {
        PrintHelp(program);
        std::exit(0);
      }
    }
    bool bad = false;
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!used_[i] && args_[i].rfind("--", 0) == 0) {
        std::fprintf(stderr, "%s: unknown flag '%s'\n", program,
                     args_[i].c_str());
        used_[i] = 1;
        if (i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0) {
          used_[i + 1] = 1;  // swallow the would-be VALUE of the bad flag
        }
        bad = true;
      }
    }
    if (bad) {
      std::fprintf(stderr, "%s: try '%s --help'\n", program, program);
      std::exit(2);
    }
  }

 private:
  struct Flag {
    std::string name;
    bool takes_value;
    const char* help;
  };

  // First registration wins the position; a later probe of the same name
  // fills in help text the first one lacked (Seen() registers helplessly).
  void Register(std::string_view name, bool takes_value,
                const char* help) const {
    for (Flag& flag : flags_) {
      if (flag.name == name) {
        if (flag.help == nullptr) flag.help = help;
        return;
      }
    }
    flags_.push_back(Flag{std::string(name), takes_value, help});
  }

  std::vector<std::string> args_;
  mutable std::vector<char> used_;  // parallel to args_: matched by a probe
  mutable std::vector<Flag> flags_;  // registered by probes, for --help
};

// Registers + parses the scheduling and telemetry flags shared by every
// bench binary and tool:
//   --jobs N         worker threads for the verification session (default 1,
//                    0 = hardware concurrency)
//   --cancel-session
//                    first bug cancels the whole session, not just its entry
//   --deadline-ms N  per-job wall-clock deadline (0 = none)
//   --memory-budget-mb N
//                    process-RSS budget with staged degradation: learnt-
//                    clause shedding, cube-escalation throttling, then
//                    cancelling the heaviest job (0 = ungoverned)
//   --retries N      escalating-budget retries for inconclusive jobs
//   --trace-out P    write a Chrome trace-event JSON of the run's spans to P
//                    (load in Perfetto or chrome://tracing)
//   --metrics-out P  write a JSON Lines metrics snapshot to P
//   --sample-period-ms N
//                    flight-recorder sampling period while the session runs
//                    (0 = off); samples land in the metrics JSONL as the
//                    timeseries section and are plotted by aqed-report
// Setting either output path arms the process-wide telemetry switch. A
// bench that runs several sessions against the same path keeps the last
// session's file (each VerificationSession::Wait rewrites it).
//
// Callers construct the FlagParser themselves (so they can layer their own
// flags on top) and should finish with flags.RejectUnknown(argv[0]).
//
// The options are assembled through SessionOptions::Builder, so every bench
// gets the same coherence screening as API callers: `--jobs 0` maps to
// WithHardwareJobs() (the documented "all cores" spelling), and a flag
// combination the builder rejects (e.g. --sample-period-ms without
// --metrics-out) aborts with the builder's message instead of silently
// recording nothing.
inline core::SessionOptions AddSessionFlags(const FlagParser& flags) {
  core::SessionOptions::Builder builder;
  const uint32_t jobs = flags.Uint32(
      "--jobs", 1, "session worker threads (0 = hardware concurrency)");
  if (jobs == 0) {
    builder.WithHardwareJobs();
  } else {
    builder.WithJobs(jobs);
  }
  if (flags.Switch("--cancel-session",
                   "first bug cancels the whole session")) {
    builder.WithCancelPolicy(core::SessionOptions::CancelPolicy::kSession);
  }
  builder
      .WithDeadlineMs(flags.Uint32("--deadline-ms", 0,
                                   "per-job wall-clock deadline (0 = none)"))
      .WithMemoryBudgetMb(flags.Uint32(
          "--memory-budget-mb", 0,
          "process-RSS budget with staged degradation (0 = ungoverned)"))
      .WithRetries(flags.Uint32(
          "--retries", 0, "escalating-budget retries for inconclusive jobs"))
      .WithTracePath(flags.String(
          "--trace-out", {},
          "write a Chrome trace-event JSON of the run's spans here"))
      .WithMetricsPath(flags.String(
          "--metrics-out", {}, "write a JSON Lines metrics snapshot here"))
      .WithSamplePeriodMs(flags.Uint32(
          "--sample-period-ms", 0,
          "flight-recorder sampling period while the session runs (0 = off)"));
  return builder.Build();
}

// The memory-controller study/testbench options moved to the service design
// catalog (src/service/registry.h) so aqed-server assembles the exact same
// configurations; re-exported here for the table/figure binaries.
using service::MemCtrlConventionalOptions;
using service::MemCtrlStudyOptions;

inline void PrintRule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace aqed::bench
