// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "accel/memctrl.h"
#include "aqed/checker.h"
#include "harness/conventional_flow.h"

namespace aqed::bench {

// Parses the scheduling flags shared by the bench binaries:
//   --jobs N         worker threads for the verification session (default 1,
//                    0 = hardware concurrency)
//   --cancel-session
//                    first bug cancels the whole session, not just its entry
//   --deadline-ms N  per-job wall-clock deadline (0 = none)
//   --retries N      escalating-budget retries for inconclusive jobs
inline core::SessionOptions ParseSessionOptions(int argc, char** argv) {
  core::SessionOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = static_cast<uint32_t>(std::atoi(argv[i + 1]));
      ++i;
    } else if (std::strcmp(argv[i], "--cancel-session") == 0) {
      options.cancel = core::SessionOptions::CancelPolicy::kSession;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.deadline_ms = static_cast<uint32_t>(std::atoi(argv[i + 1]));
      ++i;
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      options.retry.max_retries = static_cast<uint32_t>(std::atoi(argv[i + 1]));
      ++i;
    }
  }
  return options;
}

// A-QED options used for the memory-controller study (Sec. V.A): FC plus RB
// with the per-configuration response bound, per-property bounds, and a
// bounded per-depth refutation effort.
inline core::AqedOptions MemCtrlStudyOptions(accel::MemCtrlConfig config) {
  core::RbOptions rb;
  rb.tau = accel::MemCtrlResponseBound(config);
  rb.in_min = config == accel::MemCtrlConfig::kDoubleBuffer ? 2 : 1;
  return core::AqedOptions::Builder()
      .WithRb(rb)
      .WithFcBound(14)
      .WithRbBound(20)
      .WithConflictBudget(400000)
      .Build();
}

// The conventional flow's per-configuration testbench assumptions (see
// tests/memctrl_test.cpp for the rationale).
inline harness::CampaignOptions MemCtrlConventionalOptions(
    accel::MemCtrlConfig config) {
  harness::CampaignOptions options;
  options.num_seeds = 20;
  options.testbench.max_cycles = 300;   // one directed-test run
  options.testbench.data_pool = 6;
  options.testbench.hang_timeout = 200;
  // Results are compared when the test completes, as application-level
  // testbenches do — a failing conventional trace is the whole test.
  options.testbench.end_of_test_checking = true;
  options.testbench.pinned_inputs = {{"clk_en", 1}};
  if (config == accel::MemCtrlConfig::kLineBuffer) {
    options.testbench.host_ready_prob = 256;
  }
  return options;
}

inline void PrintRule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace aqed::bench
