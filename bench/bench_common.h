// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "accel/memctrl.h"
#include "aqed/checker.h"
#include "harness/conventional_flow.h"

namespace aqed::bench {

// Minimal command-line helper shared by the bench binaries. Every flag is
// either a bare switch (--cancel-session) or a --name VALUE pair; the last
// occurrence of a repeated flag wins. Each Switch()/Value() probe marks the
// arguments it matched, so after a main has declared its full flag set a
// final RejectUnknown() call turns any leftover --flag (a typo, or a flag
// from some other bench) into a hard error instead of silence.
class FlagParser {
 public:
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
    used_.assign(args_.size(), 0);
  }

  // True iff the bare switch appears anywhere on the command line.
  bool Switch(std::string_view name) const {
    bool found = false;
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        used_[i] = 1;
        found = true;
      }
    }
    return found;
  }

  // The value of the last `--name VALUE` occurrence, or nullptr.
  const std::string* Value(std::string_view name) const {
    const std::string* found = nullptr;
    for (size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        used_[i] = used_[i + 1] = 1;
        found = &args_[i + 1];
      }
    }
    return found;
  }

  // True iff --name was given with a value (used for "an explicit flag
  // overrides the bench default" logic).
  bool Seen(std::string_view name) const { return Value(name) != nullptr; }

  // Numeric accessors accept decimal, 0x-hex, and octal (strtoul base 0).
  uint32_t Uint32(std::string_view name, uint32_t fallback) const {
    const std::string* v = Value(name);
    return v ? static_cast<uint32_t>(std::strtoul(v->c_str(), nullptr, 0))
             : fallback;
  }

  uint64_t Uint64(std::string_view name, uint64_t fallback) const {
    const std::string* v = Value(name);
    return v ? std::strtoull(v->c_str(), nullptr, 0) : fallback;
  }

  std::string String(std::string_view name, std::string fallback = {}) const {
    const std::string* v = Value(name);
    return v ? *v : fallback;
  }

  // Call after every flag has been probed: exits with status 2 listing any
  // `--something` argument no Switch()/Value() call matched. Non-flag
  // positional arguments are left alone (none of the benches take any, but
  // a VALUE that happens to follow an unknown flag should be reported via
  // its flag, not separately).
  void RejectUnknown(const char* program) const {
    bool bad = false;
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!used_[i] && args_[i].rfind("--", 0) == 0) {
        std::fprintf(stderr, "%s: unknown flag '%s'\n", program,
                     args_[i].c_str());
        used_[i] = 1;
        if (i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0) {
          used_[i + 1] = 1;  // swallow the would-be VALUE of the bad flag
        }
        bad = true;
      }
    }
    if (bad) {
      std::fprintf(stderr, "%s: see the flag comments in bench_common.h\n",
                   program);
      std::exit(2);
    }
  }

 private:
  std::vector<std::string> args_;
  mutable std::vector<char> used_;  // parallel to args_: matched by a probe
};

// Parses the scheduling and telemetry flags shared by the bench binaries:
//   --jobs N         worker threads for the verification session (default 1,
//                    0 = hardware concurrency)
//   --cancel-session
//                    first bug cancels the whole session, not just its entry
//   --deadline-ms N  per-job wall-clock deadline (0 = none)
//   --memory-budget-mb N
//                    process-RSS budget with staged degradation: learnt-
//                    clause shedding, cube-escalation throttling, then
//                    cancelling the heaviest job (0 = ungoverned)
//   --retries N      escalating-budget retries for inconclusive jobs
//   --trace-out P    write a Chrome trace-event JSON of the run's spans to P
//                    (load in Perfetto or chrome://tracing)
//   --metrics-out P  write a JSON Lines metrics snapshot to P
//   --sample-period-ms N
//                    flight-recorder sampling period while the session runs
//                    (0 = off); samples land in the metrics JSONL as the
//                    timeseries section and are plotted by aqed-report
// Setting either output path arms the process-wide telemetry switch. A
// bench that runs several sessions against the same path keeps the last
// session's file (each VerificationSession::Wait rewrites it).
//
// Callers construct the FlagParser themselves (so they can layer their own
// flags on top) and should finish with flags.RejectUnknown(argv[0]).
inline core::SessionOptions ParseSessionOptions(const FlagParser& flags) {
  core::SessionOptions options;
  options.jobs = flags.Uint32("--jobs", options.jobs);
  if (flags.Switch("--cancel-session")) {
    options.cancel = core::SessionOptions::CancelPolicy::kSession;
  }
  options.deadline_ms = flags.Uint32("--deadline-ms", options.deadline_ms);
  options.memory_budget_mb =
      flags.Uint32("--memory-budget-mb", options.memory_budget_mb);
  options.retry.max_retries =
      flags.Uint32("--retries", options.retry.max_retries);
  options.trace_path = flags.String("--trace-out");
  options.metrics_path = flags.String("--metrics-out");
  options.sample_period_ms =
      flags.Uint32("--sample-period-ms", options.sample_period_ms);
  return options;
}

// A-QED options used for the memory-controller study (Sec. V.A): FC plus RB
// with the per-configuration response bound, per-property bounds, and a
// bounded per-depth refutation effort.
inline core::AqedOptions MemCtrlStudyOptions(accel::MemCtrlConfig config) {
  core::RbOptions rb;
  rb.tau = accel::MemCtrlResponseBound(config);
  rb.in_min = config == accel::MemCtrlConfig::kDoubleBuffer ? 2 : 1;
  return core::AqedOptions::Builder()
      .WithRb(rb)
      .WithFcBound(14)
      .WithRbBound(20)
      .WithConflictBudget(400000)
      .Build();
}

// The conventional flow's per-configuration testbench assumptions (see
// tests/memctrl_test.cpp for the rationale).
inline harness::CampaignOptions MemCtrlConventionalOptions(
    accel::MemCtrlConfig config) {
  harness::CampaignOptions options;
  options.num_seeds = 20;
  options.testbench.max_cycles = 300;   // one directed-test run
  options.testbench.data_pool = 6;
  options.testbench.hang_timeout = 200;
  // Results are compared when the test completes, as application-level
  // testbenches do — a failing conventional trace is the whole test.
  options.testbench.end_of_test_checking = true;
  options.testbench.pinned_inputs = {{"clk_en", 1}};
  if (config == accel::MemCtrlConfig::kLineBuffer) {
    options.testbench.host_ready_prob = 256;
  }
  return options;
}

inline void PrintRule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace aqed::bench
