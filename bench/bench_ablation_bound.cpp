// Ablation A: BMC bound vs detection (design-choice study from DESIGN.md).
//
// Shows (a) bugs are missed when the bound is below the minimal trigger
// depth, (b) the reported counterexample length is invariant once the bound
// covers it (BMC returns minimal-length witnesses — the basis of the paper's
// Observation 3), and (c) runtime growth with the bound, dominated by the
// refutation of all shallower depths.
#include <cstdio>

#include "bench_common.h"

using namespace aqed;

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  const core::SessionOptions session = bench::AddSessionFlags(flags);
  flags.RejectUnknown(argv[0]);
  printf("Ablation A: BMC bound sweep (memory-controller bugs)\n");
  bench::PrintRule('=');
  const accel::MemCtrlBugInfo cases[] = {
      {accel::MemCtrlBug::kFifoClockEnableRd, accel::MemCtrlConfig::kFifo,
       "fifo_clock_enable_rd", true, false},
      {accel::MemCtrlBug::kLbStaleAccum, accel::MemCtrlConfig::kLineBuffer,
       "lb_stale_accum", false, false},
      {accel::MemCtrlBug::kFifoStallDeadlock, accel::MemCtrlConfig::kFifo,
       "fifo_stall_deadlock", false, true},
  };

  for (const auto& info : cases) {
    printf("\n%s:\n", info.name);
    printf("  %-8s %-10s %-8s %-10s\n", "bound", "found", "cex", "time[s]");
    for (uint32_t bound : {4u, 8u, 12u, 16u, 20u}) {
      auto options = bench::MemCtrlStudyOptions(info.config);
      options.fc_bound = bound;
      options.rb_bound = bound;
      const auto result = core::CheckAccelerator(
          [&](ir::TransitionSystem& ts) {
            return accel::BuildMemCtrl(ts, info.config, info.bug).acc;
          },
          options, session);
      printf("  %-8u %-10s %-8u %-10.3f\n", bound,
             result.bug_found() ? "yes" : "no", result.cex_cycles(),
             result.solver_seconds());
    }
  }
  printf("\n(once the bound covers the minimal trigger depth, the CEX "
         "length stops changing: BMC witnesses are minimal)\n");
  return 0;
}
