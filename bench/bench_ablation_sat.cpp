// Ablation C: SAT-solver feature contributions on A-QED BMC workloads,
// via google-benchmark. Each feature of the CDCL solver (VSIDS, phase
// saving, clause minimization, restarts, clause-database reduction) and the
// optional BVE preprocessing are toggled on a fixed workload: the clean FIFO
// configuration checked to bound 7 (an UNSAT-refutation-dominated load) and
// the lb_stale_accum bug hunt (a SAT-finding load).
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace aqed;

namespace {

enum Variant {
  kBaseline,
  kNoVsids,
  kNoPhaseSaving,
  kNoMinimization,
  kNoRestarts,
  kNoReduceDb,
  kWithPreprocessing,
};

const char* VariantName(int variant) {
  switch (variant) {
    case kBaseline: return "baseline";
    case kNoVsids: return "no_vsids";
    case kNoPhaseSaving: return "no_phase_saving";
    case kNoMinimization: return "no_minimization";
    case kNoRestarts: return "no_restarts";
    case kNoReduceDb: return "no_reduce_db";
    case kWithPreprocessing: return "with_bve_preprocessing";
  }
  return "?";
}

core::AqedOptions VariantOptions(int variant, uint32_t fc_bound) {
  core::AqedOptions options;
  core::RbOptions rb;
  rb.tau = accel::MemCtrlResponseBound(accel::MemCtrlConfig::kFifo);
  options.rb = rb;
  options.fc_bound = fc_bound;
  options.rb_bound = fc_bound;
  auto& solver = options.bmc.solver_options;
  switch (variant) {
    case kNoVsids: solver.use_vsids = false; break;
    case kNoPhaseSaving: solver.use_phase_saving = false; break;
    case kNoMinimization: solver.use_minimization = false; break;
    case kNoRestarts: solver.use_restarts = false; break;
    case kNoReduceDb: solver.use_reduce_db = false; break;
    case kWithPreprocessing: options.bmc.use_preprocessing = true; break;
    default: break;
  }
  return options;
}

// UNSAT-dominated load: the clean FIFO refuted up to bound 7.
void BM_CleanFifoRefutation(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  uint64_t conflicts = 0;
  for (auto _ : state) {
    const auto result = core::CheckAccelerator(
        [](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, accel::MemCtrlConfig::kFifo).acc;
        },
        VariantOptions(variant, 7));
    if (result.bug_found()) state.SkipWithError("spurious counterexample");
    conflicts = result.conflicts();
  }
  state.SetLabel(VariantName(variant));
  state.counters["conflicts"] = static_cast<double>(conflicts);
}

// SAT-finding load: hunting the lb_stale_accum bug.
void BM_StaleAccumHunt(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  uint64_t cex = 0;
  for (auto _ : state) {
    auto options = VariantOptions(variant, 12);
    options.rb->tau =
        accel::MemCtrlResponseBound(accel::MemCtrlConfig::kLineBuffer);
    const auto result = core::CheckAccelerator(
        [](ir::TransitionSystem& ts) {
          return accel::BuildMemCtrl(ts, accel::MemCtrlConfig::kLineBuffer,
                                     accel::MemCtrlBug::kLbStaleAccum)
              .acc;
        },
        options);
    if (!result.bug_found()) state.SkipWithError("bug not found");
    cex = result.cex_cycles();
  }
  state.SetLabel(VariantName(variant));
  state.counters["cex_cycles"] = static_cast<double>(cex);
}

}  // namespace

BENCHMARK(BM_CleanFifoRefutation)
    ->DenseRange(kBaseline, kWithPreprocessing)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_StaleAccumHunt)
    ->DenseRange(kBaseline, kWithPreprocessing)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
