// Ablation B: batch size (Sec. IV.B — single- vs multiple-input batches).
//
// The AES accelerator accepts `batch_size` blocks per handshake under a
// common key (the paper's AES A-QED-module customization). The FC monitor's
// orig/dup elements may fall in the same or in different batches; this sweep
// measures how verification cost scales with the batch width, for both a
// clean design and the v1 buggy variant.
#include <cstdio>

#include "accel/aes.h"
#include "bench_common.h"

using namespace aqed;

namespace {

core::AqedOptions Options() {
  core::AqedOptions options;
  core::RbOptions rb;
  rb.tau = 24;
  options.rb = rb;
  options.fc_bound = 12;
  options.rb_bound = 16;
  options.bmc.conflict_budget = 150000;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::FlagParser flags(argc, argv);
  const core::SessionOptions session = bench::AddSessionFlags(flags);
  flags.RejectUnknown(argv[0]);
  printf("Ablation B: AES batch-size sweep (common key across batch)\n");
  bench::PrintRule('=');
  printf("%-8s | %-10s %-10s | %-8s %-8s %-10s\n", "batch", "clean[s]",
         "verdict", "v1 found", "v1 cex", "v1[s]");
  bench::PrintRule();
  for (uint32_t batch : {1u, 2u}) {
    accel::AesConfig clean;
    clean.rounds = 2;
    clean.batch_size = batch;
    auto clean_options = Options();
    clean_options.fc_bound = 8;
    clean_options.rb_bound = 10;
    const auto clean_result = core::CheckAccelerator(
        [&](ir::TransitionSystem& ts) {
          return accel::BuildAes(ts, clean).acc;
        },
        clean_options, session);

    accel::AesConfig buggy = clean;
    buggy.bug = accel::AesBug::kV1KeyScheduleStale;
    const auto buggy_result = core::CheckAccelerator(
        [&](ir::TransitionSystem& ts) {
          return accel::BuildAes(ts, buggy).acc;
        },
        Options(), session);

    printf("%-8u | %-10.3f %-10s | %-8s %-8u %-10.3f\n", batch,
           clean_result.solver_seconds(),
           clean_result.bug_found() ? "SPURIOUS" : "pass",
           buggy_result.bug_found() ? "yes" : "no",
           buggy_result.cex_cycles(), buggy_result.solver_seconds());
  }
  bench::PrintRule();
  printf("(wider batches mean wider monitors and element-select muxes; the "
         "bug stays detectable at every batch size)\n");
  return 0;
}
