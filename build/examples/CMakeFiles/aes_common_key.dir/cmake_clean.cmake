file(REMOVE_RECURSE
  "CMakeFiles/aes_common_key.dir/aes_common_key.cpp.o"
  "CMakeFiles/aes_common_key.dir/aes_common_key.cpp.o.d"
  "aes_common_key"
  "aes_common_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_common_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
