# Empty compiler generated dependencies file for aes_common_key.
# This may be replaced when dependencies are built.
