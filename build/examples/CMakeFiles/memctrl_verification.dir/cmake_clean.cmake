file(REMOVE_RECURSE
  "CMakeFiles/memctrl_verification.dir/memctrl_verification.cpp.o"
  "CMakeFiles/memctrl_verification.dir/memctrl_verification.cpp.o.d"
  "memctrl_verification"
  "memctrl_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memctrl_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
