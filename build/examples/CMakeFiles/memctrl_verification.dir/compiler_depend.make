# Empty compiler generated dependencies file for memctrl_verification.
# This may be replaced when dependencies are built.
