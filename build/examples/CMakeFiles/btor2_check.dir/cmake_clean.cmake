file(REMOVE_RECURSE
  "CMakeFiles/btor2_check.dir/btor2_check.cpp.o"
  "CMakeFiles/btor2_check.dir/btor2_check.cpp.o.d"
  "btor2_check"
  "btor2_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btor2_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
