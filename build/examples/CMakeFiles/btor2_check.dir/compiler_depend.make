# Empty compiler generated dependencies file for btor2_check.
# This may be replaced when dependencies are built.
