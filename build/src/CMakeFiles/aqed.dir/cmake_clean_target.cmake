file(REMOVE_RECURSE
  "libaqed.a"
)
