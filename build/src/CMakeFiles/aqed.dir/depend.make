# Empty dependencies file for aqed.
# This may be replaced when dependencies are built.
