
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/aes.cpp" "src/CMakeFiles/aqed.dir/accel/aes.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/accel/aes.cpp.o.d"
  "/root/repo/src/accel/aes_golden.cpp" "src/CMakeFiles/aqed.dir/accel/aes_golden.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/accel/aes_golden.cpp.o.d"
  "/root/repo/src/accel/dataflow.cpp" "src/CMakeFiles/aqed.dir/accel/dataflow.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/accel/dataflow.cpp.o.d"
  "/root/repo/src/accel/gsm.cpp" "src/CMakeFiles/aqed.dir/accel/gsm.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/accel/gsm.cpp.o.d"
  "/root/repo/src/accel/memctrl.cpp" "src/CMakeFiles/aqed.dir/accel/memctrl.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/accel/memctrl.cpp.o.d"
  "/root/repo/src/accel/memctrl_golden.cpp" "src/CMakeFiles/aqed.dir/accel/memctrl_golden.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/accel/memctrl_golden.cpp.o.d"
  "/root/repo/src/accel/motivating.cpp" "src/CMakeFiles/aqed.dir/accel/motivating.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/accel/motivating.cpp.o.d"
  "/root/repo/src/accel/multi_action.cpp" "src/CMakeFiles/aqed.dir/accel/multi_action.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/accel/multi_action.cpp.o.d"
  "/root/repo/src/accel/optflow.cpp" "src/CMakeFiles/aqed.dir/accel/optflow.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/accel/optflow.cpp.o.d"
  "/root/repo/src/aqed/checker.cpp" "src/CMakeFiles/aqed.dir/aqed/checker.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/aqed/checker.cpp.o.d"
  "/root/repo/src/aqed/fc_instrument.cpp" "src/CMakeFiles/aqed.dir/aqed/fc_instrument.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/aqed/fc_instrument.cpp.o.d"
  "/root/repo/src/aqed/interface.cpp" "src/CMakeFiles/aqed.dir/aqed/interface.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/aqed/interface.cpp.o.d"
  "/root/repo/src/aqed/rb_instrument.cpp" "src/CMakeFiles/aqed.dir/aqed/rb_instrument.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/aqed/rb_instrument.cpp.o.d"
  "/root/repo/src/aqed/report.cpp" "src/CMakeFiles/aqed.dir/aqed/report.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/aqed/report.cpp.o.d"
  "/root/repo/src/aqed/sac_instrument.cpp" "src/CMakeFiles/aqed.dir/aqed/sac_instrument.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/aqed/sac_instrument.cpp.o.d"
  "/root/repo/src/bitblast/bitblaster.cpp" "src/CMakeFiles/aqed.dir/bitblast/bitblaster.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/bitblast/bitblaster.cpp.o.d"
  "/root/repo/src/bitblast/gate_builder.cpp" "src/CMakeFiles/aqed.dir/bitblast/gate_builder.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/bitblast/gate_builder.cpp.o.d"
  "/root/repo/src/bmc/engine.cpp" "src/CMakeFiles/aqed.dir/bmc/engine.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/bmc/engine.cpp.o.d"
  "/root/repo/src/bmc/kinduction.cpp" "src/CMakeFiles/aqed.dir/bmc/kinduction.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/bmc/kinduction.cpp.o.d"
  "/root/repo/src/bmc/trace.cpp" "src/CMakeFiles/aqed.dir/bmc/trace.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/bmc/trace.cpp.o.d"
  "/root/repo/src/bmc/unroller.cpp" "src/CMakeFiles/aqed.dir/bmc/unroller.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/bmc/unroller.cpp.o.d"
  "/root/repo/src/bmc/vcd.cpp" "src/CMakeFiles/aqed.dir/bmc/vcd.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/bmc/vcd.cpp.o.d"
  "/root/repo/src/harness/conventional_flow.cpp" "src/CMakeFiles/aqed.dir/harness/conventional_flow.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/harness/conventional_flow.cpp.o.d"
  "/root/repo/src/harness/random_testbench.cpp" "src/CMakeFiles/aqed.dir/harness/random_testbench.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/harness/random_testbench.cpp.o.d"
  "/root/repo/src/ir/btor2.cpp" "src/CMakeFiles/aqed.dir/ir/btor2.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/ir/btor2.cpp.o.d"
  "/root/repo/src/ir/context.cpp" "src/CMakeFiles/aqed.dir/ir/context.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/ir/context.cpp.o.d"
  "/root/repo/src/ir/node.cpp" "src/CMakeFiles/aqed.dir/ir/node.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/ir/node.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/aqed.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/transition_system.cpp" "src/CMakeFiles/aqed.dir/ir/transition_system.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/ir/transition_system.cpp.o.d"
  "/root/repo/src/ir/typecheck.cpp" "src/CMakeFiles/aqed.dir/ir/typecheck.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/ir/typecheck.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "src/CMakeFiles/aqed.dir/sat/dimacs.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/sat/dimacs.cpp.o.d"
  "/root/repo/src/sat/preprocessor.cpp" "src/CMakeFiles/aqed.dir/sat/preprocessor.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/sat/preprocessor.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/CMakeFiles/aqed.dir/sat/solver.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/sat/solver.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/aqed.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/aqed.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/aqed.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/status.cpp" "src/CMakeFiles/aqed.dir/support/status.cpp.o" "gcc" "src/CMakeFiles/aqed.dir/support/status.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
