# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sat_solver_test[1]_include.cmake")
include("/root/repo/build/tests/aqed_motivating_test[1]_include.cmake")
include("/root/repo/build/tests/memctrl_test[1]_include.cmake")
include("/root/repo/build/tests/aes_test[1]_include.cmake")
include("/root/repo/build/tests/hls_designs_test[1]_include.cmake")
include("/root/repo/build/tests/bitblast_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bmc_test[1]_include.cmake")
include("/root/repo/build/tests/preprocessor_test[1]_include.cmake")
include("/root/repo/build/tests/aqed_core_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/multi_action_test[1]_include.cmake")
include("/root/repo/build/tests/kinduction_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/fc_soundness_test[1]_include.cmake")
