file(REMOVE_RECURSE
  "CMakeFiles/hls_designs_test.dir/hls_designs_test.cpp.o"
  "CMakeFiles/hls_designs_test.dir/hls_designs_test.cpp.o.d"
  "hls_designs_test"
  "hls_designs_test.pdb"
  "hls_designs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_designs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
