# Empty dependencies file for hls_designs_test.
# This may be replaced when dependencies are built.
