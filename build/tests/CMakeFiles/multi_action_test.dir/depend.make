# Empty dependencies file for multi_action_test.
# This may be replaced when dependencies are built.
