file(REMOVE_RECURSE
  "CMakeFiles/multi_action_test.dir/multi_action_test.cpp.o"
  "CMakeFiles/multi_action_test.dir/multi_action_test.cpp.o.d"
  "multi_action_test"
  "multi_action_test.pdb"
  "multi_action_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_action_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
