file(REMOVE_RECURSE
  "CMakeFiles/fc_soundness_test.dir/fc_soundness_test.cpp.o"
  "CMakeFiles/fc_soundness_test.dir/fc_soundness_test.cpp.o.d"
  "fc_soundness_test"
  "fc_soundness_test.pdb"
  "fc_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
