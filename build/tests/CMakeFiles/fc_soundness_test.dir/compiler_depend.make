# Empty compiler generated dependencies file for fc_soundness_test.
# This may be replaced when dependencies are built.
