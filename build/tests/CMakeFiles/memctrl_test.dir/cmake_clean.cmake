file(REMOVE_RECURSE
  "CMakeFiles/memctrl_test.dir/memctrl_test.cpp.o"
  "CMakeFiles/memctrl_test.dir/memctrl_test.cpp.o.d"
  "memctrl_test"
  "memctrl_test.pdb"
  "memctrl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memctrl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
