# Empty compiler generated dependencies file for kinduction_test.
# This may be replaced when dependencies are built.
