file(REMOVE_RECURSE
  "CMakeFiles/kinduction_test.dir/kinduction_test.cpp.o"
  "CMakeFiles/kinduction_test.dir/kinduction_test.cpp.o.d"
  "kinduction_test"
  "kinduction_test.pdb"
  "kinduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kinduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
