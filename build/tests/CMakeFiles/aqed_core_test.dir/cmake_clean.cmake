file(REMOVE_RECURSE
  "CMakeFiles/aqed_core_test.dir/aqed_core_test.cpp.o"
  "CMakeFiles/aqed_core_test.dir/aqed_core_test.cpp.o.d"
  "aqed_core_test"
  "aqed_core_test.pdb"
  "aqed_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqed_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
