# Empty dependencies file for aqed_core_test.
# This may be replaced when dependencies are built.
