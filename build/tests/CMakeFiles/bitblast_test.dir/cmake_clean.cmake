file(REMOVE_RECURSE
  "CMakeFiles/bitblast_test.dir/bitblast_test.cpp.o"
  "CMakeFiles/bitblast_test.dir/bitblast_test.cpp.o.d"
  "bitblast_test"
  "bitblast_test.pdb"
  "bitblast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitblast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
