# Empty dependencies file for aqed_motivating_test.
# This may be replaced when dependencies are built.
