file(REMOVE_RECURSE
  "CMakeFiles/aqed_motivating_test.dir/aqed_motivating_test.cpp.o"
  "CMakeFiles/aqed_motivating_test.dir/aqed_motivating_test.cpp.o.d"
  "aqed_motivating_test"
  "aqed_motivating_test.pdb"
  "aqed_motivating_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqed_motivating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
