file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sat.dir/bench_ablation_sat.cpp.o"
  "CMakeFiles/bench_ablation_sat.dir/bench_ablation_sat.cpp.o.d"
  "bench_ablation_sat"
  "bench_ablation_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
